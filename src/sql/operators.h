#ifndef MINERULE_SQL_OPERATORS_H_
#define MINERULE_SQL_OPERATORS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/stopwatch.h"
#include "relational/table.h"
#include "sql/aggregates.h"
#include "sql/ast.h"
#include "sql/expr_eval.h"

namespace minerule::sql {

/// Execution statistics for one operator, snapshotted from an executed plan
/// (EXPLAIN ANALYZE, preprocess query profiles).
struct OperatorProfile {
  std::string name;
  std::string detail;
  int depth = 0;       // position in the pre-order flattening of the plan
  int64_t rows = 0;    // rows produced
  int64_t micros = 0;  // inclusive wall time; 0 unless timing was enabled
  std::vector<std::pair<std::string, int64_t>> counters;
};

/// Base class of the volcano-style (Open/Next) executor nodes. A node's
/// output schema is fixed at construction; Next() produces one row at a
/// time until it returns false.
///
/// The public Open/Next are non-virtual wrappers that count produced rows
/// (always — a branch and an increment) and, when timing is enabled via
/// EnableTimingTree, accumulate wall time. Timing is *inclusive*: a parent
/// pulls from its children inside NextImpl, so child time is counted in the
/// parent as well (like EXPLAIN ANALYZE's "actual time" in most engines).
class ExecNode {
 public:
  explicit ExecNode(Schema schema) : schema_(std::move(schema)) {}
  virtual ~ExecNode() = default;

  ExecNode(const ExecNode&) = delete;
  ExecNode& operator=(const ExecNode&) = delete;

  Status Open() {
    if (!timing_) return OpenImpl();
    Stopwatch watch;
    Status status = OpenImpl();
    micros_ += watch.ElapsedMicros();
    return status;
  }

  /// Produces the next row into *out; returns false at end of stream.
  Result<bool> Next(Row* out) {
    if (!timing_) {
      Result<bool> more = NextImpl(out);
      if (more.ok() && *more) ++rows_out_;
      return more;
    }
    Stopwatch watch;
    Result<bool> more = NextImpl(out);
    micros_ += watch.ElapsedMicros();
    if (more.ok() && *more) ++rows_out_;
    return more;
  }

  const Schema& schema() const { return schema_; }

  /// Operator name as shown in EXPLAIN (e.g. "HashJoin").
  virtual const char* name() const = 0;

  /// One-line operator argument (predicate, table name, key list, ...).
  /// Deterministic: depends only on the plan, never on execution.
  virtual std::string detail() const { return ""; }

  /// Child operators in plan order (build/probe inputs, etc.).
  virtual std::vector<ExecNode*> children() { return {}; }

  /// Operator-specific counters (hash-table build size, ...), only
  /// meaningful after execution.
  virtual void AppendExtraCounters(
      std::vector<std::pair<std::string, int64_t>>* /*out*/) const {}

  int64_t rows_out() const { return rows_out_; }
  int64_t micros() const { return micros_; }

  /// Turns per-operator wall-time accounting on/off for this whole subtree.
  void EnableTimingTree(bool enabled) {
    timing_ = enabled;
    for (ExecNode* child : children()) child->EnableTimingTree(enabled);
  }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<bool> NextImpl(Row* out) = 0;

  Schema schema_;

 private:
  bool timing_ = false;
  int64_t rows_out_ = 0;
  int64_t micros_ = 0;
};

using ExecNodePtr = std::unique_ptr<ExecNode>;

/// Drains a plan into a vector of rows.
Result<std::vector<Row>> CollectRows(ExecNode* node);

/// Pre-order flattening of the plan's statistics (root first, children at
/// depth + 1). Call after execution for meaningful rows/micros.
std::vector<OperatorProfile> FlattenPlanProfile(ExecNode* root);

/// Renders the plan as indented text lines, one per operator. With
/// `analyze` the lines append actual rows, time and extra counters; without
/// it the output is fully deterministic (golden-testable).
std::vector<std::string> RenderPlan(ExecNode* root, bool analyze);

/// Full scan over a catalog table. The row count is snapshotted at Open()
/// so `INSERT INTO t SELECT ... FROM t` terminates.
class TableScanNode : public ExecNode {
 public:
  explicit TableScanNode(std::shared_ptr<Table> table);
  const char* name() const override { return "TableScan"; }
  std::string detail() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  std::shared_ptr<Table> table_;
  size_t pos_ = 0;
  size_t snapshot_size_ = 0;
};

/// Emits a fixed in-memory row set (subquery materialization, VALUES,
/// and the implicit single empty row of a FROM-less SELECT).
class RowsNode : public ExecNode {
 public:
  RowsNode(Schema schema, std::vector<Row> rows);
  const char* name() const override { return "Rows"; }
  std::string detail() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

/// WHERE / HAVING filter.
class FilterNode : public ExecNode {
 public:
  FilterNode(ExecNodePtr child, ExprPtr predicate, ExecContext* ctx);
  const char* name() const override { return "Filter"; }
  std::string detail() const override;
  std::vector<ExecNode*> children() override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  ExecNodePtr child_;
  ExprPtr predicate_;
  ExecContext* ctx_;
};

/// SELECT-list projection (expressions already bound / rewritten).
class ProjectNode : public ExecNode {
 public:
  ProjectNode(ExecNodePtr child, std::vector<ExprPtr> exprs, Schema out_schema,
              ExecContext* ctx);
  const char* name() const override { return "Project"; }
  std::string detail() const override;
  std::vector<ExecNode*> children() override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  ExecNodePtr child_;
  std::vector<ExprPtr> exprs_;
  ExecContext* ctx_;
};

/// Nested-loop join with optional residual predicate evaluated over the
/// concatenated row. The right side is materialized at Open() for rescans.
class NestedLoopJoinNode : public ExecNode {
 public:
  NestedLoopJoinNode(ExecNodePtr left, ExecNodePtr right, ExprPtr predicate,
                     ExecContext* ctx);
  const char* name() const override { return "NestedLoopJoin"; }
  std::string detail() const override;
  std::vector<ExecNode*> children() override {
    return {left_.get(), right_.get()};
  }
  void AppendExtraCounters(
      std::vector<std::pair<std::string, int64_t>>* out) const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  ExecNodePtr left_;
  ExecNodePtr right_;
  ExprPtr predicate_;  // may be null (cross join)
  ExecContext* ctx_;
  std::vector<Row> right_rows_;
  Row current_left_;
  bool have_left_ = false;
  size_t right_pos_ = 0;
};

/// Equi hash join: builds a hash table over the right input keyed on
/// `right_keys`, probes with `left_keys`. A residual predicate (the
/// non-equi part of the join condition) filters matches. SQL semantics:
/// NULL keys never match.
class HashJoinNode : public ExecNode {
 public:
  HashJoinNode(ExecNodePtr left, ExecNodePtr right,
               std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys,
               ExprPtr residual, ExecContext* ctx);
  const char* name() const override { return "HashJoin"; }
  std::string detail() const override;
  std::vector<ExecNode*> children() override {
    return {left_.get(), right_.get()};
  }
  void AppendExtraCounters(
      std::vector<std::pair<std::string, int64_t>>* out) const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  Result<bool> ComputeKey(const std::vector<ExprPtr>& exprs, const Row& row,
                          Row* key) const;

  ExecNodePtr left_;
  ExecNodePtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  ExprPtr residual_;  // may be null
  ExecContext* ctx_;
  std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> hash_table_;
  int64_t build_rows_ = 0;
  Row current_left_;
  const std::vector<Row>* current_bucket_ = nullptr;
  size_t bucket_pos_ = 0;
};

/// One aggregate computed by HashAggregateNode.
struct AggSpec {
  AggFunc func = AggFunc::kCountStar;
  bool distinct = false;
  ExprPtr arg;  // bound against the child schema; null for COUNT(*)
};

/// GROUP BY via hashing. Output row layout: group expressions first, then
/// aggregate results, matching the slot rewriting done by the planner.
/// With no group expressions it emits exactly one row (global aggregate),
/// even over empty input.
class HashAggregateNode : public ExecNode {
 public:
  HashAggregateNode(ExecNodePtr child, std::vector<ExprPtr> group_exprs,
                    std::vector<AggSpec> aggs, Schema out_schema,
                    ExecContext* ctx);
  const char* name() const override { return "HashAggregate"; }
  std::string detail() const override;
  std::vector<ExecNode*> children() override { return {child_.get()}; }
  void AppendExtraCounters(
      std::vector<std::pair<std::string, int64_t>>* out) const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  ExecNodePtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  ExecContext* ctx_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

/// Streaming hash-based DISTINCT.
class DistinctNode : public ExecNode {
 public:
  explicit DistinctNode(ExecNodePtr child);
  const char* name() const override { return "Distinct"; }
  std::vector<ExecNode*> children() override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  ExecNodePtr child_;
  std::unordered_set<Row, RowHash, RowEq> seen_;
};

/// ORDER BY: materializes and sorts at Open() using the total value order.
class SortNode : public ExecNode {
 public:
  struct SortKey {
    ExprPtr expr;  // bound against the child schema
    bool descending = false;
  };
  SortNode(ExecNodePtr child, std::vector<SortKey> keys, ExecContext* ctx);
  const char* name() const override { return "Sort"; }
  std::string detail() const override;
  std::vector<ExecNode*> children() override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  ExecNodePtr child_;
  std::vector<SortKey> keys_;
  ExecContext* ctx_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

/// LIMIT n.
class LimitNode : public ExecNode {
 public:
  LimitNode(ExecNodePtr child, int64_t limit);
  const char* name() const override { return "Limit"; }
  std::string detail() const override;
  std::vector<ExecNode*> children() override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  ExecNodePtr child_;
  int64_t limit_;
  int64_t produced_ = 0;
};

}  // namespace minerule::sql

#endif  // MINERULE_SQL_OPERATORS_H_
