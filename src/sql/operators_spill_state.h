#ifndef MINERULE_SQL_OPERATORS_SPILL_STATE_H_
#define MINERULE_SQL_OPERATORS_SPILL_STATE_H_

// Definitions of the spill-state structs owned by the buffering operators
// (DESIGN.md §13). operators.cc needs the complete types to construct and
// reset the owning unique_ptrs; operators_spill.cc implements the budgeted
// paths that fill them. Internal to the sql library — not part of its API.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sql/operators.h"
#include "storage/row_codec.h"
#include "storage/spill.h"

namespace minerule::sql {

/// External-merge-sort state: one spill file holding sorted runs, plus the
/// open run readers of the final merge.
struct SortNode::External {
  std::unique_ptr<storage::SpillFile> file;
  std::vector<storage::SpillRun> runs;  // sorted runs, in input-chunk order

  /// One open run in a merge: the current record decoded just far enough to
  /// compare (its key); the row payload stays encoded until emitted.
  struct Source {
    storage::SpillFile::Reader reader;
    std::string record;
    Row key;
    size_t row_pos = 0;  // offset of the encoded row inside `record`
    bool done = true;
  };
  std::vector<Source> sources;  // final merge inputs, in run order

  static Status Advance(Source* source) {
    MR_ASSIGN_OR_RETURN(bool more, source->reader.Next(&source->record));
    if (!more) {
      source->done = true;
      return Status::OK();
    }
    size_t pos = 0;
    MR_RETURN_IF_ERROR(storage::DecodeRow(source->record.data(),
                                          source->record.size(), &pos,
                                          &source->key));
    source->row_pos = pos;
    source->done = false;
    return Status::OK();
  }
};

/// Grace-hash-join state: the partitioned build/probe scatter files, the
/// shared output file its leaves append to, and the open run readers of the
/// final probe-order merge.
struct HashJoinNode::Spill {
  std::unique_ptr<storage::SpillFile> build_file;  // [key][row] records
  std::unique_ptr<storage::SpillFile> probe_file;  // [index][key][row] records
  std::unique_ptr<storage::SpillFile> output;      // [index][joined] records
  std::vector<storage::SpillRun> output_runs;

  /// One open output run in a merge, positioned on its next record with the
  /// leading probe index decoded for comparison.
  struct Source {
    storage::SpillFile::Reader reader;
    std::string record;
    uint64_t index = 0;
    size_t row_pos = 0;  // offset of the encoded joined row inside `record`
    bool done = true;
  };
  std::vector<Source> sources;

  static Status Advance(Source* source) {
    MR_ASSIGN_OR_RETURN(bool more, source->reader.Next(&source->record));
    if (!more) {
      source->done = true;
      return Status::OK();
    }
    size_t pos = 0;
    MR_RETURN_IF_ERROR(storage::DecodeU64(source->record.data(),
                                          source->record.size(), &pos,
                                          &source->index));
    source->row_pos = pos;
    source->done = false;
    return Status::OK();
  }
};

}  // namespace minerule::sql

#endif  // MINERULE_SQL_OPERATORS_SPILL_STATE_H_
