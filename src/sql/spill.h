#ifndef MINERULE_SQL_SPILL_H_
#define MINERULE_SQL_SPILL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "relational/schema.h"
#include "storage/spill.h"

namespace minerule::sql {

/// Partition fanout of the spilling (grace) hash join and of the spilling
/// hash aggregate (DESIGN.md §13). Fixed so the partition assignment of a
/// key never depends on the thread count or the budget value.
inline constexpr size_t kSpillPartitions = 16;

/// Recursion cap for re-partitioning a spill partition that still exceeds
/// the budget. At the cap the partition is processed in memory regardless —
/// the budget is a target for working sets, not a hard allocator limit.
inline constexpr int kMaxSpillDepth = 8;

/// Maximum spill runs merged in one pass (external sort, join output).
/// Larger run counts are first collapsed by intermediate merge passes so
/// the number of concurrently buffered run readers stays bounded.
inline constexpr size_t kMergeFanIn = 64;

/// Partition hash for spilled keys at a given recursion depth. Seeded by
/// the depth so each re-partitioning level splits on fresh bits — a
/// partition whose keys all collided at depth d still spreads at d+1 —
/// and decorrelated from RowHash so the in-memory hash table of a leaf
/// partition does not see single-bucket pileups.
uint64_t SpillHash(const Row& key, int depth);

/// Tracks an operator's estimated working-set bytes against the query
/// memory budget (ExecContext::memory_limit) and keeps the named peak
/// gauge fresh *during* buffering — published every 64 additions and on
/// Publish()/Reset() — so a memory spike is visible in mr_metrics even if
/// the query never finishes filling the buffer.
class MemoryAccountant {
 public:
  /// `limit` < 0 disables the budget check (OverBudget is then never true);
  /// the gauge is maintained either way.
  MemoryAccountant(const char* gauge, int64_t limit)
      : gauge_(GlobalMetrics().GetGauge(gauge)), limit_(limit) {}

  ~MemoryAccountant() { Publish(); }

  MemoryAccountant(const MemoryAccountant&) = delete;
  MemoryAccountant& operator=(const MemoryAccountant&) = delete;

  void AddBytes(int64_t bytes) {
    bytes_ += bytes;
    if ((++adds_ & 63) == 0) Publish();
  }

  bool OverBudget() const { return limit_ >= 0 && bytes_ > limit_; }
  int64_t bytes() const { return bytes_; }
  int64_t peak() const { return peak_; }

  /// Publishes the running total to the peak gauge.
  void Publish() {
    peak_ = bytes_ > peak_ ? bytes_ : peak_;
    gauge_->UpdateMax(bytes_);
  }

  /// Publishes, then zeroes the running total — call after the tracked
  /// buffer was flushed to disk.
  void Reset() {
    Publish();
    bytes_ = 0;
  }

 private:
  Gauge* gauge_;
  int64_t limit_;
  int64_t bytes_ = 0;
  int64_t peak_ = 0;
  int adds_ = 0;
};

/// Scatters records into a fixed number of partitions inside ONE SpillFile.
/// A SpillFile's runs are sequential extents, so concurrently growing
/// partitions cannot interleave raw appends; instead each partition buffers
/// records and flushes them as a chunk-run when the buffer fills. A
/// partition's payload is therefore an ordered list of runs whose
/// concatenation holds the partition's records in exactly their append
/// order — the property every spill determinism argument leans on
/// (DESIGN.md §13).
class PartitionedSpillWriter {
 public:
  PartitionedSpillWriter(storage::SpillFile* file, size_t num_partitions)
      : file_(file), parts_(num_partitions) {}

  /// Buffers one record for `partition`, flushing that partition's chunk
  /// when it crosses kChunkBytes.
  Status Add(size_t partition, std::string_view record);

  /// Flushes every partition's pending chunk. Call before reading.
  Status Finish();

  /// The run list making up one partition, in record order.
  const std::vector<storage::SpillRun>& runs(size_t partition) const {
    return parts_[partition].runs;
  }
  uint64_t records(size_t partition) const { return parts_[partition].records; }
  /// Payload + framing bytes of one partition — the budget proxy deciding
  /// whether that partition must recurse.
  uint64_t bytes(size_t partition) const { return parts_[partition].bytes; }

 private:
  /// Per-partition staging buffer: small enough that all partitions pending
  /// at once stay an I/O-buffering constant, large enough to amortize run
  /// bookkeeping.
  static constexpr size_t kChunkBytes = 64 * 1024;

  struct Part {
    std::vector<std::string> pending;
    size_t pending_bytes = 0;
    std::vector<storage::SpillRun> runs;
    uint64_t records = 0;
    uint64_t bytes = 0;
  };

  Status FlushPartition(size_t partition);

  storage::SpillFile* file_;
  std::vector<Part> parts_;
};

/// Sequential reader over one partition's records: its run list, in order.
class PartitionReader {
 public:
  PartitionReader(const storage::SpillFile* file,
                  const std::vector<storage::SpillRun>& runs)
      : file_(file), runs_(&runs) {}

  /// Reads the next record; false once every run is exhausted.
  Result<bool> Next(std::string* record);

 private:
  const storage::SpillFile* file_;
  const std::vector<storage::SpillRun>* runs_;
  size_t next_run_ = 0;
  storage::SpillFile::Reader reader_;
  bool reader_open_ = false;
};

}  // namespace minerule::sql

#endif  // MINERULE_SQL_SPILL_H_
