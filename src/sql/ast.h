#ifndef MINERULE_SQL_AST_H_
#define MINERULE_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"

namespace minerule::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kSlotRef,   // resolved position in the input row (introduced by binding)
  kHostVar,   // :name — bound to an engine host variable at evaluation time
  kUnary,     // NOT, unary -
  kBinary,    // AND OR = <> < <= > >= + - * / % ||
  kBetween,
  kInList,
  kIsNull,
  kFunction,  // scalar functions: ABS, UPPER, LOWER, LENGTH, YEAR, ...
  kAggregate, // COUNT/SUM/AVG/MIN/MAX — only valid where aggregation applies
  kNextVal,   // <sequence>.NEXTVAL
  kStar,      // '*' inside COUNT(*) only
};

enum class UnaryOp { kNot, kNegate };

enum class BinaryOp {
  kAnd,
  kOr,
  kEq,
  kNotEq,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kConcat,
};

const char* BinaryOpName(BinaryOp op);

enum class AggFunc { kCountStar, kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc func);

/// Base class for expression AST nodes. Nodes are mutated in place by the
/// binder (column references get resolved indexes), so each parsed tree is
/// bound against exactly one input layout; views are re-parsed per use.
struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;

  ExprKind kind;

  /// Deep copy (unbound state is preserved; bound slots are copied too).
  virtual std::unique_ptr<Expr> Clone() const = 0;

  /// Unparses to SQL text (used by the MINE RULE translator when embedding
  /// user conditions into generated queries, and in error messages).
  virtual std::string ToSql() const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

struct LiteralExpr : Expr {
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  Value value;
  ExprPtr Clone() const override {
    return std::make_unique<LiteralExpr>(value);
  }
  std::string ToSql() const override { return value.ToSqlLiteral(); }
};

struct ColumnRefExpr : Expr {
  ColumnRefExpr(std::string qual, std::string col)
      : Expr(ExprKind::kColumnRef),
        qualifier(std::move(qual)),
        column(std::move(col)) {}
  std::string qualifier;  // table alias; empty if unqualified
  std::string column;
  // Filled by the binder.
  int bound_index = -1;
  DataType bound_type = DataType::kNull;

  ExprPtr Clone() const override {
    auto copy = std::make_unique<ColumnRefExpr>(qualifier, column);
    copy->bound_index = bound_index;
    copy->bound_type = bound_type;
    return copy;
  }
  std::string ToSql() const override {
    return qualifier.empty() ? column : qualifier + "." + column;
  }
};

/// A direct reference to a position of the input row; produced by the
/// planner when rewriting post-aggregation expressions.
struct SlotRefExpr : Expr {
  SlotRefExpr(int idx, DataType t, std::string display)
      : Expr(ExprKind::kSlotRef),
        index(idx),
        type(t),
        display_name(std::move(display)) {}
  int index;
  DataType type;
  std::string display_name;

  ExprPtr Clone() const override {
    return std::make_unique<SlotRefExpr>(index, type, display_name);
  }
  std::string ToSql() const override { return display_name; }
};

struct HostVarExpr : Expr {
  explicit HostVarExpr(std::string n)
      : Expr(ExprKind::kHostVar), name(std::move(n)) {}
  std::string name;
  ExprPtr Clone() const override {
    return std::make_unique<HostVarExpr>(name);
  }
  std::string ToSql() const override { return ":" + name; }
};

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp o, ExprPtr e)
      : Expr(ExprKind::kUnary), op(o), operand(std::move(e)) {}
  UnaryOp op;
  ExprPtr operand;
  ExprPtr Clone() const override {
    return std::make_unique<UnaryExpr>(op, operand->Clone());
  }
  std::string ToSql() const override {
    return (op == UnaryOp::kNot ? "NOT (" : "-(") + operand->ToSql() + ")";
  }
};

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kBinary), op(o), lhs(std::move(l)), rhs(std::move(r)) {}
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
  ExprPtr Clone() const override {
    return std::make_unique<BinaryExpr>(op, lhs->Clone(), rhs->Clone());
  }
  std::string ToSql() const override;
};

struct BetweenExpr : Expr {
  BetweenExpr(ExprPtr e, ExprPtr l, ExprPtr h, bool neg)
      : Expr(ExprKind::kBetween),
        operand(std::move(e)),
        low(std::move(l)),
        high(std::move(h)),
        negated(neg) {}
  ExprPtr operand;
  ExprPtr low;
  ExprPtr high;
  bool negated;
  ExprPtr Clone() const override {
    return std::make_unique<BetweenExpr>(operand->Clone(), low->Clone(),
                                         high->Clone(), negated);
  }
  std::string ToSql() const override {
    return operand->ToSql() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
           low->ToSql() + " AND " + high->ToSql();
  }
};

struct InListExpr : Expr {
  InListExpr(ExprPtr e, std::vector<ExprPtr> l, bool neg)
      : Expr(ExprKind::kInList),
        operand(std::move(e)),
        list(std::move(l)),
        negated(neg) {}
  ExprPtr operand;
  std::vector<ExprPtr> list;
  bool negated;
  ExprPtr Clone() const override;
  std::string ToSql() const override;
};

struct IsNullExpr : Expr {
  IsNullExpr(ExprPtr e, bool neg)
      : Expr(ExprKind::kIsNull), operand(std::move(e)), negated(neg) {}
  ExprPtr operand;
  bool negated;
  ExprPtr Clone() const override {
    return std::make_unique<IsNullExpr>(operand->Clone(), negated);
  }
  std::string ToSql() const override {
    return operand->ToSql() + (negated ? " IS NOT NULL" : " IS NULL");
  }
};

struct FunctionExpr : Expr {
  FunctionExpr(std::string n, std::vector<ExprPtr> a)
      : Expr(ExprKind::kFunction), name(std::move(n)), args(std::move(a)) {}
  std::string name;  // normalized upper-case
  std::vector<ExprPtr> args;
  ExprPtr Clone() const override;
  std::string ToSql() const override;
};

struct AggregateExpr : Expr {
  AggregateExpr(AggFunc f, bool dist, ExprPtr a)
      : Expr(ExprKind::kAggregate),
        func(f),
        distinct(dist),
        arg(std::move(a)) {}
  AggFunc func;
  bool distinct;
  ExprPtr arg;  // null for COUNT(*)
  ExprPtr Clone() const override {
    return std::make_unique<AggregateExpr>(func, distinct,
                                           arg ? arg->Clone() : nullptr);
  }
  std::string ToSql() const override;
};

struct NextValExpr : Expr {
  explicit NextValExpr(std::string seq)
      : Expr(ExprKind::kNextVal), sequence(std::move(seq)) {}
  std::string sequence;
  ExprPtr Clone() const override {
    return std::make_unique<NextValExpr>(sequence);
  }
  std::string ToSql() const override { return sequence + ".NEXTVAL"; }
};

struct StarExpr : Expr {
  StarExpr() : Expr(ExprKind::kStar) {}
  ExprPtr Clone() const override { return std::make_unique<StarExpr>(); }
  std::string ToSql() const override { return "*"; }
};

/// Structural equality of expression trees (compares unbound shape: kinds,
/// operators, names case-insensitively, literal values). Used to match
/// SELECT/HAVING subexpressions against GROUP BY keys.
bool ExprEquals(const Expr& a, const Expr& b);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct SelectStmt;

/// An element of the FROM list: a base relation (table or view) or a
/// parenthesized subquery, optionally aliased.
struct TableRef {
  enum class Kind { kBase, kSubquery };
  Kind kind = Kind::kBase;
  std::string name;   // base relation name
  std::string alias;  // effective alias (defaults to name for base tables)
  std::unique_ptr<SelectStmt> subquery;
};

/// SELECT-list item: expression with optional alias, or a star ("*", "T.*").
struct SelectItem {
  ExprPtr expr;           // null when is_star
  std::string alias;      // empty = derive from expression
  bool is_star = false;
  std::string star_qualifier;  // for "T.*"
};

struct OrderItem {
  ExprPtr expr;  // may be an integer literal = output ordinal
  bool descending = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::string into_host_var;  // SELECT ... INTO :var (scalar results)
  std::vector<TableRef> from;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
};

struct CreateTableStmt {
  std::string name;
  std::vector<Column> columns;    // empty when created from a query
  std::unique_ptr<SelectStmt> as_select;  // CREATE TABLE ... AS SELECT
};

struct CreateViewStmt {
  std::string name;
  std::string select_sql;  // original text of the view body
};

struct CreateSequenceStmt {
  std::string name;
  int64_t start = 1;
};

struct DropStmt {
  enum class ObjectKind { kTable, kView, kSequence };
  ObjectKind object_kind = ObjectKind::kTable;
  std::string name;
  bool if_exists = false;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // optional explicit column list
  std::unique_ptr<SelectStmt> select;             // INSERT ... SELECT
  std::vector<std::vector<ExprPtr>> values_rows;  // INSERT ... VALUES
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  // null = delete all
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // null = update all rows
};

/// ANALYZE [<table>]: (re)collects catalog statistics (DESIGN.md §14) for
/// one table, or for every table when no name is given.
struct AnalyzeStmt {
  std::string table;  // empty = all tables
};

/// A single parsed SQL statement (tagged union by unique ownership).
struct Statement;

/// EXPLAIN [ANALYZE] <statement>. Without ANALYZE the target is only
/// planned; with ANALYZE its plan is executed (side effects of INSERT /
/// CREATE TABLE AS are *not* applied — only the inner SELECT runs).
struct ExplainStmt {
  bool analyze = false;
  std::unique_ptr<Statement> target;
};

struct Statement {
  enum class Kind {
    kSelect,
    kCreateTable,
    kCreateView,
    kCreateSequence,
    kDrop,
    kInsert,
    kDelete,
    kUpdate,
    kExplain,
    kAnalyze,
  };
  Kind kind;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<CreateViewStmt> create_view;
  std::unique_ptr<CreateSequenceStmt> create_sequence;
  std::unique_ptr<DropStmt> drop;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<ExplainStmt> explain;
  std::unique_ptr<AnalyzeStmt> analyze;
};

}  // namespace minerule::sql

#endif  // MINERULE_SQL_AST_H_
