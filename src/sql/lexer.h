#ifndef MINERULE_SQL_LEXER_H_
#define MINERULE_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace minerule::sql {

/// Tokenizes SQL (and MINE RULE) text. The MINE RULE operator deliberately
/// shares the SQL lexical structure (it is "a SQL-like operator"), so one
/// lexer serves both parsers.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  /// Lexes the whole input; the returned vector always ends with a kEnd
  /// token. Fails on unterminated strings or stray characters.
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> NextToken();
  void SkipWhitespaceAndComments();
  char Peek(size_t ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= input_.size(); }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

/// Convenience wrapper for one-shot tokenization.
Result<std::vector<Token>> TokenizeSql(std::string_view input);

}  // namespace minerule::sql

#endif  // MINERULE_SQL_LEXER_H_
