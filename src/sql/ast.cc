#include "sql/ast.h"

#include "common/string_util.h"

namespace minerule::sql {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNotEq:
      return "<>";
    case BinaryOp::kLess:
      return "<";
    case BinaryOp::kLessEq:
      return "<=";
    case BinaryOp::kGreater:
      return ">";
    case BinaryOp::kGreaterEq:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kConcat:
      return "||";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

std::string BinaryExpr::ToSql() const {
  return "(" + lhs->ToSql() + " " + BinaryOpName(op) + " " + rhs->ToSql() +
         ")";
}

ExprPtr InListExpr::Clone() const {
  std::vector<ExprPtr> copies;
  copies.reserve(list.size());
  for (const ExprPtr& e : list) copies.push_back(e->Clone());
  return std::make_unique<InListExpr>(operand->Clone(), std::move(copies),
                                      negated);
}

std::string InListExpr::ToSql() const {
  std::string out = operand->ToSql() + (negated ? " NOT IN (" : " IN (");
  for (size_t i = 0; i < list.size(); ++i) {
    if (i > 0) out += ", ";
    out += list[i]->ToSql();
  }
  out += ")";
  return out;
}

ExprPtr FunctionExpr::Clone() const {
  std::vector<ExprPtr> copies;
  copies.reserve(args.size());
  for (const ExprPtr& e : args) copies.push_back(e->Clone());
  return std::make_unique<FunctionExpr>(name, std::move(copies));
}

std::string FunctionExpr::ToSql() const {
  std::string out = name + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i]->ToSql();
  }
  out += ")";
  return out;
}

std::string AggregateExpr::ToSql() const {
  std::string out = AggFuncName(func);
  out += "(";
  if (func == AggFunc::kCountStar) {
    out += "*";
  } else {
    if (distinct) out += "DISTINCT ";
    out += arg->ToSql();
  }
  out += ")";
  return out;
}

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) {
    // A bound column reference and the slot it was rewritten to are not
    // considered equal; matching happens before slot rewriting.
    return false;
  }
  switch (a.kind) {
    case ExprKind::kLiteral: {
      const auto& la = static_cast<const LiteralExpr&>(a);
      const auto& lb = static_cast<const LiteralExpr&>(b);
      return la.value.TotalEquals(lb.value);
    }
    case ExprKind::kColumnRef: {
      const auto& ca = static_cast<const ColumnRefExpr&>(a);
      const auto& cb = static_cast<const ColumnRefExpr&>(b);
      // Bound references compare by resolved slot: "price" and "p.price"
      // are the same column if they bound to the same input position.
      if (ca.bound_index >= 0 && cb.bound_index >= 0) {
        return ca.bound_index == cb.bound_index;
      }
      return EqualsIgnoreCase(ca.qualifier, cb.qualifier) &&
             EqualsIgnoreCase(ca.column, cb.column);
    }
    case ExprKind::kSlotRef: {
      const auto& sa = static_cast<const SlotRefExpr&>(a);
      const auto& sb = static_cast<const SlotRefExpr&>(b);
      return sa.index == sb.index;
    }
    case ExprKind::kHostVar: {
      const auto& ha = static_cast<const HostVarExpr&>(a);
      const auto& hb = static_cast<const HostVarExpr&>(b);
      return EqualsIgnoreCase(ha.name, hb.name);
    }
    case ExprKind::kUnary: {
      const auto& ua = static_cast<const UnaryExpr&>(a);
      const auto& ub = static_cast<const UnaryExpr&>(b);
      return ua.op == ub.op && ExprEquals(*ua.operand, *ub.operand);
    }
    case ExprKind::kBinary: {
      const auto& ba = static_cast<const BinaryExpr&>(a);
      const auto& bb = static_cast<const BinaryExpr&>(b);
      return ba.op == bb.op && ExprEquals(*ba.lhs, *bb.lhs) &&
             ExprEquals(*ba.rhs, *bb.rhs);
    }
    case ExprKind::kBetween: {
      const auto& ba = static_cast<const BetweenExpr&>(a);
      const auto& bb = static_cast<const BetweenExpr&>(b);
      return ba.negated == bb.negated &&
             ExprEquals(*ba.operand, *bb.operand) &&
             ExprEquals(*ba.low, *bb.low) && ExprEquals(*ba.high, *bb.high);
    }
    case ExprKind::kInList: {
      const auto& ia = static_cast<const InListExpr&>(a);
      const auto& ib = static_cast<const InListExpr&>(b);
      if (ia.negated != ib.negated || ia.list.size() != ib.list.size() ||
          !ExprEquals(*ia.operand, *ib.operand)) {
        return false;
      }
      for (size_t i = 0; i < ia.list.size(); ++i) {
        if (!ExprEquals(*ia.list[i], *ib.list[i])) return false;
      }
      return true;
    }
    case ExprKind::kIsNull: {
      const auto& na = static_cast<const IsNullExpr&>(a);
      const auto& nb = static_cast<const IsNullExpr&>(b);
      return na.negated == nb.negated && ExprEquals(*na.operand, *nb.operand);
    }
    case ExprKind::kFunction: {
      const auto& fa = static_cast<const FunctionExpr&>(a);
      const auto& fb = static_cast<const FunctionExpr&>(b);
      if (!EqualsIgnoreCase(fa.name, fb.name) ||
          fa.args.size() != fb.args.size()) {
        return false;
      }
      for (size_t i = 0; i < fa.args.size(); ++i) {
        if (!ExprEquals(*fa.args[i], *fb.args[i])) return false;
      }
      return true;
    }
    case ExprKind::kAggregate: {
      const auto& ga = static_cast<const AggregateExpr&>(a);
      const auto& gb = static_cast<const AggregateExpr&>(b);
      if (ga.func != gb.func || ga.distinct != gb.distinct) return false;
      if ((ga.arg == nullptr) != (gb.arg == nullptr)) return false;
      return ga.arg == nullptr || ExprEquals(*ga.arg, *gb.arg);
    }
    case ExprKind::kNextVal: {
      const auto& na = static_cast<const NextValExpr&>(a);
      const auto& nb = static_cast<const NextValExpr&>(b);
      return EqualsIgnoreCase(na.sequence, nb.sequence);
    }
    case ExprKind::kStar:
      return true;
  }
  return false;
}

}  // namespace minerule::sql
