#include "sql/parser.h"

#include <array>

#include "common/string_util.h"
#include "relational/date.h"
#include "sql/lexer.h"

namespace minerule::sql {

namespace {

/// Clause keywords that must not be consumed as implicit aliases.
constexpr std::array<const char*, 22> kReservedAliasWords = {
    "WHERE",  "GROUP",   "HAVING", "ORDER",      "LIMIT",  "ON",
    "INNER",  "JOIN",    "LEFT",   "RIGHT",      "UNION",  "AND",
    "OR",     "NOT",     "AS",     "FROM",       "SELECT", "CLUSTER",
    "EXTRACTING", "INTO", "SET",   "VALUES",
};

}  // namespace

Status Parser::Init() {
  if (initialized_) return Status::OK();
  MR_ASSIGN_OR_RETURN(tokens_, TokenizeSql(input_));
  initialized_ = true;
  pos_ = 0;
  return Status::OK();
}

const Token& Parser::Peek(size_t ahead) const {
  const size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::Advance() {
  const Token& tok = Peek();
  if (pos_ < tokens_.size() - 1) ++pos_;
  return tok;
}

bool Parser::MatchKeyword(const char* kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::Match(TokenType type) {
  if (Check(type)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType type, const char* what) {
  if (!Check(type)) {
    return ErrorHere(std::string("expected ") + what);
  }
  Advance();
  return Status::OK();
}

Status Parser::ExpectKeyword(const char* kw) {
  if (!MatchKeyword(kw)) {
    return ErrorHere(std::string("expected keyword ") + kw);
  }
  return Status::OK();
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& tok = Peek();
  std::string got = tok.type == TokenType::kEnd
                        ? "end of input"
                        : (tok.text.empty() ? TokenTypeName(tok.type)
                                            : "'" + tok.text + "'");
  return Status::ParseError(message + ", got " + got + " at line " +
                            std::to_string(tok.line) + ":" +
                            std::to_string(tok.column));
}

bool Parser::CurrentIsAliasCandidate() const {
  if (!Check(TokenType::kIdentifier)) return false;
  for (const char* kw : kReservedAliasWords) {
    if (Peek().IsKeyword(kw)) return false;
  }
  return true;
}

Result<Statement> Parser::ParseStatement() {
  MR_RETURN_IF_ERROR(Init());
  MR_ASSIGN_OR_RETURN(Statement stmt, ParseOneStatement());
  Match(TokenType::kSemicolon);
  if (!Check(TokenType::kEnd)) {
    return ErrorHere("unexpected trailing input");
  }
  return stmt;
}

Result<std::vector<Statement>> Parser::ParseScript() {
  MR_RETURN_IF_ERROR(Init());
  std::vector<Statement> stmts;
  while (!Check(TokenType::kEnd)) {
    if (Match(TokenType::kSemicolon)) continue;
    MR_ASSIGN_OR_RETURN(Statement stmt, ParseOneStatement());
    stmts.push_back(std::move(stmt));
    if (!Check(TokenType::kEnd)) {
      MR_RETURN_IF_ERROR(Expect(TokenType::kSemicolon, "';'"));
    }
  }
  return stmts;
}

Result<ExprPtr> Parser::ParseStandaloneExpression() {
  MR_RETURN_IF_ERROR(Init());
  MR_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
  if (!Check(TokenType::kEnd)) {
    return ErrorHere("unexpected trailing input after expression");
  }
  return expr;
}

Result<Statement> Parser::ParseOneStatement() {
  if (CheckKeyword("SELECT")) {
    MR_ASSIGN_OR_RETURN(auto select, ParseSelect());
    Statement stmt;
    stmt.kind = Statement::Kind::kSelect;
    stmt.select = std::move(select);
    return stmt;
  }
  if (CheckKeyword("CREATE")) return ParseCreate();
  if (CheckKeyword("DROP")) return ParseDrop();
  if (CheckKeyword("INSERT")) return ParseInsert();
  if (CheckKeyword("DELETE")) return ParseDelete();
  if (CheckKeyword("UPDATE")) return ParseUpdate();
  if (MatchKeyword("ANALYZE")) {
    auto analyze = std::make_unique<AnalyzeStmt>();
    if (Check(TokenType::kIdentifier)) analyze->table = Advance().text;
    Statement stmt;
    stmt.kind = Statement::Kind::kAnalyze;
    stmt.analyze = std::move(analyze);
    return stmt;
  }
  if (MatchKeyword("EXPLAIN")) {
    auto explain = std::make_unique<ExplainStmt>();
    explain->analyze = MatchKeyword("ANALYZE");
    MR_ASSIGN_OR_RETURN(Statement target, ParseOneStatement());
    if (target.kind == Statement::Kind::kExplain) {
      return ErrorHere("EXPLAIN cannot be nested");
    }
    explain->target = std::make_unique<Statement>(std::move(target));
    Statement stmt;
    stmt.kind = Statement::Kind::kExplain;
    stmt.explain = std::move(explain);
    return stmt;
  }
  return ErrorHere(
      "expected a statement (SELECT/CREATE/DROP/INSERT/UPDATE/DELETE/"
      "ANALYZE/EXPLAIN)");
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelect() {
  MR_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  auto stmt = std::make_unique<SelectStmt>();
  if (MatchKeyword("DISTINCT")) stmt->distinct = true;
  else MatchKeyword("ALL");

  do {
    MR_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
    stmt->items.push_back(std::move(item));
  } while (Match(TokenType::kComma));

  if (MatchKeyword("INTO")) {
    if (!Check(TokenType::kHostVariable)) {
      return ErrorHere("expected host variable after INTO");
    }
    stmt->into_host_var = Advance().text;
  }

  if (MatchKeyword("FROM")) {
    do {
      MR_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      stmt->from.push_back(std::move(ref));
    } while (Match(TokenType::kComma));
  }

  if (MatchKeyword("WHERE")) {
    MR_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }

  if (MatchKeyword("GROUP")) {
    MR_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      MR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->group_by.push_back(std::move(e));
    } while (Match(TokenType::kComma));
    if (MatchKeyword("HAVING")) {
      MR_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
  } else if (MatchKeyword("HAVING")) {
    // HAVING without GROUP BY aggregates over the whole input.
    MR_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }

  if (MatchKeyword("ORDER")) {
    MR_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      OrderItem item;
      MR_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.descending = true;
      } else {
        MatchKeyword("ASC");
      }
      stmt->order_by.push_back(std::move(item));
    } while (Match(TokenType::kComma));
  }

  if (MatchKeyword("LIMIT")) {
    if (!Check(TokenType::kIntegerLiteral)) {
      return ErrorHere("expected integer after LIMIT");
    }
    stmt->limit = Advance().int_value;
  }

  return stmt;
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  if (Check(TokenType::kStar)) {
    Advance();
    item.is_star = true;
    return item;
  }
  // "T.*"
  if (Check(TokenType::kIdentifier) && Peek(1).type == TokenType::kDot &&
      Peek(2).type == TokenType::kStar) {
    item.is_star = true;
    item.star_qualifier = Advance().text;
    Advance();  // '.'
    Advance();  // '*'
    return item;
  }
  MR_ASSIGN_OR_RETURN(item.expr, ParseExpr());
  if (MatchKeyword("AS")) {
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected alias after AS");
    }
    item.alias = Advance().text;
  } else if (CurrentIsAliasCandidate()) {
    item.alias = Advance().text;
  }
  return item;
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  if (Match(TokenType::kLParen)) {
    MR_ASSIGN_OR_RETURN(ref.subquery, ParseSelect());
    MR_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')' after subquery"));
    ref.kind = TableRef::Kind::kSubquery;
    if (MatchKeyword("AS")) {
      if (!Check(TokenType::kIdentifier)) {
        return ErrorHere("expected alias after AS");
      }
      ref.alias = Advance().text;
    } else if (CurrentIsAliasCandidate()) {
      ref.alias = Advance().text;
    }
    return ref;
  }
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected table name or subquery in FROM");
  }
  ref.kind = TableRef::Kind::kBase;
  ref.name = Advance().text;
  ref.alias = ref.name;
  if (MatchKeyword("AS")) {
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected alias after AS");
    }
    ref.alias = Advance().text;
  } else if (CurrentIsAliasCandidate()) {
    ref.alias = Advance().text;
  }
  return ref;
}

Result<Statement> Parser::ParseCreate() {
  MR_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
  if (MatchKeyword("TABLE")) {
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected table name");
    }
    auto create = std::make_unique<CreateTableStmt>();
    create->name = Advance().text;
    if (MatchKeyword("AS")) {
      MR_ASSIGN_OR_RETURN(create->as_select, ParseSelect());
    } else {
      MR_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      do {
        if (!Check(TokenType::kIdentifier)) {
          return ErrorHere("expected column name");
        }
        std::string col_name = Advance().text;
        if (!Check(TokenType::kIdentifier)) {
          return ErrorHere("expected column type");
        }
        std::string type_name = Advance().text;
        // Swallow optional length, e.g. VARCHAR(20).
        if (Match(TokenType::kLParen)) {
          while (!Check(TokenType::kRParen) && !Check(TokenType::kEnd)) {
            Advance();
          }
          MR_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        }
        MR_ASSIGN_OR_RETURN(DataType type, DataTypeFromName(type_name));
        create->columns.emplace_back(std::move(col_name), type);
      } while (Match(TokenType::kComma));
      MR_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    }
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateTable;
    stmt.create_table = std::move(create);
    return stmt;
  }
  if (MatchKeyword("VIEW")) {
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected view name");
    }
    auto create = std::make_unique<CreateViewStmt>();
    create->name = Advance().text;
    MR_RETURN_IF_ERROR(ExpectKeyword("AS"));
    // Views may be written as `AS SELECT ...` or `AS (SELECT ...)`.
    bool parenthesized = false;
    if (Check(TokenType::kLParen) && Peek(1).IsKeyword("SELECT")) {
      Advance();
      parenthesized = true;
    }
    const size_t start_offset = Peek().offset;
    MR_ASSIGN_OR_RETURN(auto select, ParseSelect());
    (void)select;  // validated; the text is what we store
    const size_t end_offset = Peek().offset;
    create->select_sql = std::string(
        StripWhitespace(input_.substr(start_offset, end_offset - start_offset)));
    if (parenthesized) {
      MR_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')' closing view body"));
    }
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateView;
    stmt.create_view = std::move(create);
    return stmt;
  }
  if (MatchKeyword("SEQUENCE")) {
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected sequence name");
    }
    auto create = std::make_unique<CreateSequenceStmt>();
    create->name = Advance().text;
    if (MatchKeyword("START")) {
      MR_RETURN_IF_ERROR(ExpectKeyword("WITH"));
      if (!Check(TokenType::kIntegerLiteral)) {
        return ErrorHere("expected integer after START WITH");
      }
      create->start = Advance().int_value;
    }
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateSequence;
    stmt.create_sequence = std::move(create);
    return stmt;
  }
  return ErrorHere("expected TABLE, VIEW or SEQUENCE after CREATE");
}

Result<Statement> Parser::ParseDrop() {
  MR_RETURN_IF_ERROR(ExpectKeyword("DROP"));
  auto drop = std::make_unique<DropStmt>();
  if (MatchKeyword("TABLE")) {
    drop->object_kind = DropStmt::ObjectKind::kTable;
  } else if (MatchKeyword("VIEW")) {
    drop->object_kind = DropStmt::ObjectKind::kView;
  } else if (MatchKeyword("SEQUENCE")) {
    drop->object_kind = DropStmt::ObjectKind::kSequence;
  } else {
    return ErrorHere("expected TABLE, VIEW or SEQUENCE after DROP");
  }
  if (MatchKeyword("IF")) {
    MR_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
    drop->if_exists = true;
  }
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected object name");
  }
  drop->name = Advance().text;
  Statement stmt;
  stmt.kind = Statement::Kind::kDrop;
  stmt.drop = std::move(drop);
  return stmt;
}

Result<Statement> Parser::ParseInsert() {
  MR_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
  MR_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected table name");
  }
  auto insert = std::make_unique<InsertStmt>();
  insert->table = Advance().text;

  // `INSERT INTO t (SELECT ...)` vs `INSERT INTO t (col, ...) ...`.
  if (Check(TokenType::kLParen) && Peek(1).IsKeyword("SELECT")) {
    Advance();
    MR_ASSIGN_OR_RETURN(insert->select, ParseSelect());
    // Appendix A omits some closing parens; accept either form.
    Match(TokenType::kRParen);
  } else {
    if (Match(TokenType::kLParen)) {
      do {
        if (!Check(TokenType::kIdentifier)) {
          return ErrorHere("expected column name");
        }
        insert->columns.push_back(Advance().text);
      } while (Match(TokenType::kComma));
      MR_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    }
    if (MatchKeyword("VALUES")) {
      do {
        MR_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
        std::vector<ExprPtr> row;
        do {
          MR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          row.push_back(std::move(e));
        } while (Match(TokenType::kComma));
        MR_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        insert->values_rows.push_back(std::move(row));
      } while (Match(TokenType::kComma));
    } else if (CheckKeyword("SELECT")) {
      MR_ASSIGN_OR_RETURN(insert->select, ParseSelect());
    } else if (Check(TokenType::kLParen) && Peek(1).IsKeyword("SELECT")) {
      Advance();
      MR_ASSIGN_OR_RETURN(insert->select, ParseSelect());
      Match(TokenType::kRParen);
    } else {
      return ErrorHere("expected VALUES or SELECT in INSERT");
    }
  }
  Statement stmt;
  stmt.kind = Statement::Kind::kInsert;
  stmt.insert = std::move(insert);
  return stmt;
}

Result<Statement> Parser::ParseDelete() {
  MR_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
  MR_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected table name");
  }
  auto del = std::make_unique<DeleteStmt>();
  del->table = Advance().text;
  if (MatchKeyword("WHERE")) {
    MR_ASSIGN_OR_RETURN(del->where, ParseExpr());
  }
  Statement stmt;
  stmt.kind = Statement::Kind::kDelete;
  stmt.del = std::move(del);
  return stmt;
}

Result<Statement> Parser::ParseUpdate() {
  MR_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected table name");
  }
  auto update = std::make_unique<UpdateStmt>();
  update->table = Advance().text;
  MR_RETURN_IF_ERROR(ExpectKeyword("SET"));
  do {
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected column name in SET");
    }
    std::string column = Advance().text;
    MR_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
    MR_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
    update->assignments.emplace_back(std::move(column), std::move(value));
  } while (Match(TokenType::kComma));
  if (MatchKeyword("WHERE")) {
    MR_ASSIGN_OR_RETURN(update->where, ParseExpr());
  }
  Statement stmt;
  stmt.kind = Statement::Kind::kUpdate;
  stmt.update = std::move(update);
  return stmt;
}

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() {
  MR_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (MatchKeyword("OR")) {
    MR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(lhs),
                                       std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  MR_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (MatchKeyword("AND")) {
    MR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(lhs),
                                       std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    MR_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(operand)));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  MR_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

  if (MatchKeyword("IS")) {
    bool negated = MatchKeyword("NOT");
    MR_RETURN_IF_ERROR(ExpectKeyword("NULL"));
    return ExprPtr(std::make_unique<IsNullExpr>(std::move(lhs), negated));
  }

  bool negated = false;
  if (CheckKeyword("NOT") &&
      (Peek(1).IsKeyword("BETWEEN") || Peek(1).IsKeyword("IN"))) {
    Advance();
    negated = true;
  }

  if (MatchKeyword("BETWEEN")) {
    MR_ASSIGN_OR_RETURN(ExprPtr low, ParseAdditive());
    MR_RETURN_IF_ERROR(ExpectKeyword("AND"));
    MR_ASSIGN_OR_RETURN(ExprPtr high, ParseAdditive());
    return ExprPtr(std::make_unique<BetweenExpr>(std::move(lhs), std::move(low),
                                                 std::move(high), negated));
  }

  if (MatchKeyword("IN")) {
    MR_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' after IN"));
    std::vector<ExprPtr> list;
    do {
      MR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      list.push_back(std::move(e));
    } while (Match(TokenType::kComma));
    MR_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return ExprPtr(std::make_unique<InListExpr>(std::move(lhs),
                                                std::move(list), negated));
  }

  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kEq:
      op = BinaryOp::kEq;
      break;
    case TokenType::kNotEq:
      op = BinaryOp::kNotEq;
      break;
    case TokenType::kLess:
      op = BinaryOp::kLess;
      break;
    case TokenType::kLessEq:
      op = BinaryOp::kLessEq;
      break;
    case TokenType::kGreater:
      op = BinaryOp::kGreater;
      break;
    case TokenType::kGreaterEq:
      op = BinaryOp::kGreaterEq;
      break;
    default:
      return lhs;
  }
  Advance();
  MR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
  return ExprPtr(
      std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs)));
}

Result<ExprPtr> Parser::ParseAdditive() {
  MR_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  while (true) {
    BinaryOp op;
    if (Check(TokenType::kPlus)) {
      op = BinaryOp::kAdd;
    } else if (Check(TokenType::kMinus)) {
      op = BinaryOp::kSub;
    } else if (Check(TokenType::kConcat)) {
      op = BinaryOp::kConcat;
    } else {
      return lhs;
    }
    Advance();
    MR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  MR_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (true) {
    BinaryOp op;
    if (Check(TokenType::kStar)) {
      op = BinaryOp::kMul;
    } else if (Check(TokenType::kSlash)) {
      op = BinaryOp::kDiv;
    } else if (Check(TokenType::kPercent)) {
      op = BinaryOp::kMod;
    } else {
      return lhs;
    }
    Advance();
    MR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
    lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Match(TokenType::kMinus)) {
    MR_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kNegate, std::move(operand)));
  }
  if (Match(TokenType::kPlus)) {
    return ParseUnary();
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kIntegerLiteral: {
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Value::Integer(tok.int_value)));
    }
    case TokenType::kDoubleLiteral: {
      Advance();
      return ExprPtr(
          std::make_unique<LiteralExpr>(Value::Double(tok.double_value)));
    }
    case TokenType::kStringLiteral: {
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Value::String(tok.text)));
    }
    case TokenType::kHostVariable: {
      Advance();
      return ExprPtr(std::make_unique<HostVarExpr>(tok.text));
    }
    case TokenType::kLParen: {
      Advance();
      MR_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      MR_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    case TokenType::kIdentifier:
      break;
    default:
      return ErrorHere("expected an expression");
  }

  // Keyword literals.
  if (tok.IsKeyword("NULL")) {
    Advance();
    return ExprPtr(std::make_unique<LiteralExpr>(Value::Null()));
  }
  if (tok.IsKeyword("TRUE")) {
    Advance();
    return ExprPtr(std::make_unique<LiteralExpr>(Value::Boolean(true)));
  }
  if (tok.IsKeyword("FALSE")) {
    Advance();
    return ExprPtr(std::make_unique<LiteralExpr>(Value::Boolean(false)));
  }
  // DATE 'YYYY-MM-DD' literal (also accepts the paper's MM/DD/YY form).
  if (tok.IsKeyword("DATE") && Peek(1).type == TokenType::kStringLiteral) {
    Advance();
    const Token& lit = Advance();
    MR_ASSIGN_OR_RETURN(int32_t days, date::Parse(lit.text));
    return ExprPtr(std::make_unique<LiteralExpr>(Value::Date(days)));
  }

  Advance();  // consume the identifier
  const std::string name = tok.text;

  if (Check(TokenType::kLParen)) {
    return ParseFunctionOrAggregate(name);
  }

  if (Check(TokenType::kDot)) {
    Advance();
    if (Check(TokenType::kStar)) {
      // "T.*" reaches here only in illegal positions; the select-list path
      // intercepts it earlier.
      return ErrorHere("'*' is only allowed in the select list");
    }
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected column name after '.'");
    }
    const std::string second = Advance().text;
    if (EqualsIgnoreCase(second, "NEXTVAL")) {
      return ExprPtr(std::make_unique<NextValExpr>(name));
    }
    return ExprPtr(std::make_unique<ColumnRefExpr>(name, second));
  }

  return ExprPtr(std::make_unique<ColumnRefExpr>("", name));
}

Result<ExprPtr> Parser::ParseFunctionOrAggregate(const std::string& name) {
  MR_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
  const std::string upper = ToUpper(name);

  if (upper == "COUNT") {
    if (Match(TokenType::kStar)) {
      MR_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return ExprPtr(std::make_unique<AggregateExpr>(AggFunc::kCountStar,
                                                     false, nullptr));
    }
    bool distinct = MatchKeyword("DISTINCT");
    MR_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
    MR_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return ExprPtr(std::make_unique<AggregateExpr>(AggFunc::kCount, distinct,
                                                   std::move(arg)));
  }
  if (upper == "SUM" || upper == "AVG" || upper == "MIN" || upper == "MAX") {
    AggFunc func = upper == "SUM"   ? AggFunc::kSum
                   : upper == "AVG" ? AggFunc::kAvg
                   : upper == "MIN" ? AggFunc::kMin
                                    : AggFunc::kMax;
    bool distinct = MatchKeyword("DISTINCT");
    MR_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
    MR_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return ExprPtr(
        std::make_unique<AggregateExpr>(func, distinct, std::move(arg)));
  }

  std::vector<ExprPtr> args;
  if (!Check(TokenType::kRParen)) {
    do {
      MR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      args.push_back(std::move(e));
    } while (Match(TokenType::kComma));
  }
  MR_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
  return ExprPtr(std::make_unique<FunctionExpr>(upper, std::move(args)));
}

Result<Statement> ParseSql(std::string_view sql) {
  Parser parser(sql);
  return parser.ParseStatement();
}

Result<std::vector<Statement>> ParseSqlScript(std::string_view sql) {
  Parser parser(sql);
  return parser.ParseScript();
}

Result<std::unique_ptr<SelectStmt>> ParseSelectSql(std::string_view sql) {
  Parser parser(sql);
  MR_ASSIGN_OR_RETURN(Statement stmt, parser.ParseStatement());
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::ParseError("expected a SELECT statement");
  }
  return std::move(stmt.select);
}

}  // namespace minerule::sql
