#ifndef MINERULE_SQL_SYSTEM_TABLES_H_
#define MINERULE_SQL_SYSTEM_TABLES_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "sql/operators.h"

namespace minerule::sql {

// ---------------------------------------------------------------------------
// Queryable telemetry (DESIGN.md §11, §16): nine virtual mr_* tables
// materialized on scan from the process-wide registries, so the embedded SQL
// engine can query its own execution history — the same tight coupling the
// paper argues for applied to the system's introspection:
//
//   SELECT * FROM mr_query_profile WHERE query_id = 'Q4' ORDER BY rows DESC;
//   SELECT session_id, state FROM mr_active_statements;   -- live (§16)
//
// mr_sessions, mr_active_statements and mr_slow_queries materialize from the
// statement lifecycle registry (sql/statement_registry.h) the server session
// layer maintains. A catalog table or view with the same name shadows the
// system table, so existing workloads can never break.
// ---------------------------------------------------------------------------

/// Profile of one generated query inside one run (a preprocess Q0..Q11,
/// a postprocess decode step, or a DDL statement of either phase).
struct QueryProfileRecord {
  std::string query_id;  // "Q4", "POST2", ...
  std::string phase;     // "preprocess" | "postprocess"
  std::string sql;
  int64_t rows = 0;
  int64_t micros = 0;
  std::vector<OperatorProfile> operators;
};

/// One MINE RULE execution recorded by DataMiningSystem.
struct RunRecord {
  int64_t run_id = 0;  // assigned by ObservabilityRegistry::RecordRun
  std::string statement;
  std::string status = "ok";  // "ok" or the failing phase's error message
  int threads = 1;
  int64_t total_micros = 0;
  int64_t rules = 0;       // rules in the output table
  int64_t peak_bytes = 0;  // estimated peak working-set bytes of the run
  bool reused_preprocess = false;
  /// Server-session attribution (DESIGN.md §15). Library runs outside a
  /// session carry session 0 with an empty admission decision.
  int64_t session_id = 0;
  int64_t queue_wait_micros = 0;
  std::string admission;  // "", "immediate" or "queued"
  std::vector<QueryProfileRecord> queries;
};

/// Process-wide run history behind mr_runs / mr_query_profile /
/// mr_operator_stats. Append-only; leaked like the shared thread pool.
class ObservabilityRegistry {
 public:
  ObservabilityRegistry() = default;
  ObservabilityRegistry(const ObservabilityRegistry&) = delete;
  ObservabilityRegistry& operator=(const ObservabilityRegistry&) = delete;

  /// Appends the run and returns its assigned run_id (1-based, dense).
  int64_t RecordRun(RunRecord run);

  std::vector<RunRecord> Runs() const;
  int64_t run_count() const;
  /// run_id of the most recent run, 0 when none.
  int64_t LatestRunId() const;

  /// Drops the history. Tests only.
  void ResetForTesting();

 private:
  mutable std::mutex mutex_;
  std::vector<RunRecord> runs_;
};

ObservabilityRegistry& GlobalObservability();

/// True for the nine mr_* system tables (case-insensitive).
bool IsSystemTable(const std::string& name);

/// The system-table names in display order.
const std::vector<std::string>& SystemTableNames();

/// Schema of a system table; NotFound for other names.
Result<Schema> SystemTableSchema(const std::string& name);

/// Materializes the current contents of a system table. Row order is
/// deterministic: history tables in run order, mr_metrics sorted by name,
/// mr_trace_spans in (tid, record order), mr_table_stats in (table, column
/// position) order, mr_sessions in session-id order, mr_active_statements
/// in statement-id order, mr_slow_queries oldest first. `stats` feeds
/// mr_table_stats — it shows the entries the engine's statistics catalog
/// has already collected (via planning under cost-based mode or ANALYZE);
/// null yields an empty table, never an error.
Result<std::pair<Schema, std::vector<Row>>> MaterializeSystemTable(
    const std::string& name, const class StatisticsCatalog* stats = nullptr);

}  // namespace minerule::sql

#endif  // MINERULE_SQL_SYSTEM_TABLES_H_
