#ifndef MINERULE_SQL_ENGINE_H_
#define MINERULE_SQL_ENGINE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "relational/catalog.h"
#include "sql/expr_eval.h"
#include "sql/operators.h"
#include "sql/statistics.h"

namespace minerule::sql {

/// The result of executing one statement. SELECTs fill schema/rows; DML
/// fills affected_rows; DDL leaves both empty.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  int64_t affected_rows = 0;

  /// Per-operator execution statistics of the plan that produced this
  /// result. Filled for planned statements (SELECT, INSERT ... SELECT,
  /// CREATE TABLE AS) when the engine's collect_operator_stats flag is on,
  /// and always for EXPLAIN ANALYZE.
  std::vector<OperatorProfile> profile;

  /// Aligned ASCII rendering, for examples and debugging.
  std::string ToDisplayString(size_t max_rows = 100) const;
};

/// The SQL92-subset server of the tightly-coupled architecture. Everything
/// the paper's preprocessor and postprocessor do goes through this facade as
/// plain SQL text — that is the portability property the architecture is
/// designed around.
///
/// Host variables: `SELECT expr INTO :name ...` stores a scalar; `:name` in
/// any expression reads it back; SetHostVariable seeds values (the
/// preprocessor sets :mingroups this way, as in Appendix A's Q3).
class SqlEngine {
 public:
  explicit SqlEngine(Catalog* catalog);

  SqlEngine(const SqlEngine&) = delete;
  SqlEngine& operator=(const SqlEngine&) = delete;

  /// Executes a single SQL statement.
  Result<QueryResult> Execute(std::string_view sql);

  /// Executes a ';'-separated script; returns the last statement's result.
  Result<QueryResult> ExecuteScript(std::string_view sql);

  void SetHostVariable(const std::string& name, Value value);
  Result<Value> GetHostVariable(const std::string& name) const;

  /// When on, planned statements fill QueryResult::profile with row counts
  /// per operator (cheap: one increment per row; no timing). EXPLAIN
  /// ANALYZE additionally enables per-operator timing for its own plan.
  void set_collect_operator_stats(bool on) { collect_operator_stats_ = on; }
  bool collect_operator_stats() const { return collect_operator_stats_; }

  /// Worker threads for morsel-driven query execution (DESIGN.md §9).
  /// 1 (the default) is the exact serial path; <= 0 means hardware
  /// concurrency. Results are bit-identical at every setting — the plan
  /// shape never depends on it, only how operators execute.
  void set_num_threads(int num_threads) { num_threads_ = num_threads; }
  int num_threads() const { return num_threads_; }

  /// Columnar-batch execution (DESIGN.md §12). When on, the planner swaps
  /// eligible operators (scan, scan-fused filter, int-keyed hash join,
  /// int-keyed group-by) for their vectorized counterparts. Off by default;
  /// results are bit-identical either way — the differential tests pin this.
  void set_vectorized(bool on) { vectorized_ = on; }
  bool vectorized() const { return vectorized_; }

  /// Memory budget in bytes for operator working sets (DESIGN.md §13).
  /// < 0 (the default) disables the budget; >= 0 makes the buffering
  /// operators — hash-join build, aggregation, sort — spill to disk once
  /// their accounted working set exceeds it (0 spills everything). Results
  /// are bit-identical to unbudgeted execution at every thread count. The
  /// constructor seeds this from the MINERULE_MEMORY_LIMIT environment
  /// variable when it is set, so whole test suites can be rerun under a
  /// tiny budget without touching their code.
  void set_memory_limit(int64_t bytes) { memory_limit_ = bytes; }
  int64_t memory_limit() const { return memory_limit_; }

  /// Directory for spill files; empty (the default) means $TMPDIR or /tmp.
  /// Spill files are created with mkstemp and unlinked immediately, so they
  /// never outlive the process even on a crash.
  void set_spill_dir(std::string dir) { spill_dir_ = std::move(dir); }
  const std::string& spill_dir() const { return spill_dir_; }

  /// Cost-based planning (DESIGN.md §14). When on, the planner estimates
  /// cardinalities from catalog statistics (collected lazily, refreshed by
  /// ANALYZE) plus observed-cardinality feedback from earlier executions,
  /// and uses them to reorder joins, pick the hash-join build side, fall
  /// back to row-at-a-time execution on tiny inputs and size the spill
  /// fan-out. Off (the default) planning stays purely syntactic. Results
  /// are bit-identical either way — the fuzz oracle's cost-based route
  /// pins it.
  void set_cost_based(bool on) { cost_based_ = on; }
  bool cost_based() const { return cost_based_; }

  /// The engine-owned statistics catalog and plan feedback store. Exposed
  /// for tests and for mr_table_stats materialization.
  StatisticsCatalog* statistics() { return &statistics_; }
  PlanFeedback* feedback() { return &feedback_; }

  Catalog* catalog() { return catalog_; }

 private:
  /// Builds the per-statement execution context for planned statements.
  ExecContext MakeContext();
  /// Feeds observed operator cardinalities back into feedback_ after a
  /// planned statement ran to completion.
  void RecordFeedback(const struct PlannedSelect& planned);

  Result<QueryResult> ExecuteStatement(struct Statement* stmt);
  Result<QueryResult> ExecuteSelect(struct SelectStmt* stmt);
  Result<QueryResult> ExecuteCreateTable(struct CreateTableStmt* stmt);
  Result<QueryResult> ExecuteCreateView(struct CreateViewStmt* stmt);
  Result<QueryResult> ExecuteCreateSequence(struct CreateSequenceStmt* stmt);
  Result<QueryResult> ExecuteDrop(struct DropStmt* stmt);
  Result<QueryResult> ExecuteInsert(struct InsertStmt* stmt);
  Result<QueryResult> ExecuteDelete(struct DeleteStmt* stmt);
  Result<QueryResult> ExecuteUpdate(struct UpdateStmt* stmt);
  Result<QueryResult> ExecuteExplain(struct ExplainStmt* stmt);
  Result<QueryResult> ExecuteAnalyze(struct AnalyzeStmt* stmt);

  Catalog* catalog_;
  HostVarMap host_vars_;
  bool collect_operator_stats_ = false;
  int num_threads_ = 1;
  bool vectorized_ = false;
  int64_t memory_limit_ = -1;  // < 0 disables the budget
  std::string spill_dir_;      // empty means $TMPDIR or /tmp
  bool cost_based_ = false;
  StatisticsCatalog statistics_;
  PlanFeedback feedback_;
};

}  // namespace minerule::sql

#endif  // MINERULE_SQL_ENGINE_H_
