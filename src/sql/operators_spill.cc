// Budgeted serial paths of the buffering operators (DESIGN.md §13): the
// external merge sort, the recursive grace-hash join and the partitioned
// spilling aggregate. All three stream their input under a MemoryAccountant;
// within the budget they degenerate to the exact in-memory serial algorithms,
// past it their working sets spill to anonymous temp files and the merged
// results reproduce the serial output bit for bit.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "sql/operators.h"
#include "sql/operators_spill_state.h"
#include "sql/spill.h"
#include "storage/row_codec.h"
#include "storage/spill.h"

namespace minerule::sql {

namespace {

Counter* SortSpillBytesCounter() {
  static Counter* counter = GlobalMetrics().GetCounter("sql.sort.spill_bytes");
  return counter;
}

Counter* SortSpillPartitionsCounter() {
  static Counter* counter =
      GlobalMetrics().GetCounter("sql.sort.spill_partitions");
  return counter;
}

Counter* JoinSpillBytesCounter() {
  static Counter* counter = GlobalMetrics().GetCounter("sql.join.spill_bytes");
  return counter;
}

Counter* JoinSpillPartitionsCounter() {
  static Counter* counter =
      GlobalMetrics().GetCounter("sql.join.spill_partitions");
  return counter;
}

Counter* AggSpillBytesCounter() {
  static Counter* counter =
      GlobalMetrics().GetCounter("sql.aggregate.spill_bytes");
  return counter;
}

Counter* AggSpillPartitionsCounter() {
  static Counter* counter =
      GlobalMetrics().GetCounter("sql.aggregate.spill_partitions");
  return counter;
}

/// Planner-chosen spill fan-out (ExecContext::spill_partitions), defaulting
/// to the historical kSpillPartitions. Every spill path restores output
/// order from recorded input indexes, so the fan-out never affects results —
/// only how many partition files a scatter produces.
size_t SpillFanOut(const ExecContext* ctx) {
  return ctx->spill_partitions == 0 ? kSpillPartitions : ctx->spill_partitions;
}

Row SpillConcatRows(const Row& a, const Row& b) {
  Row out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// SortNode: external merge sort
// ---------------------------------------------------------------------------

SortNode::~SortNode() = default;

Status SortNode::OpenBudget() {
  // Stream the child serially into a (key, row) buffer tracked by the
  // accountant. Keys are computed at buffering time, in input order — the
  // same expression evaluation order (and first error) as the in-memory
  // path — and are spilled beside their rows so no expression is ever
  // re-evaluated during the merges.
  MemoryAccountant accountant("sql.sort.buffer_peak_bytes",
                              ctx_->memory_limit);
  std::vector<std::pair<Row, Row>> buffer;  // (key, row), input order

  auto sort_buffer = [&] {
    std::stable_sort(
        buffer.begin(), buffer.end(),
        [&](const auto& a, const auto& b) { return KeyLess(a.first, b.first); });
  };
  auto write_run = [&]() -> Status {
    sort_buffer();
    std::string record;
    for (const auto& [key, row] : buffer) {
      record.clear();
      storage::EncodeRow(key, &record);
      storage::EncodeRow(row, &record);
      MR_RETURN_IF_ERROR(external_->file->Append(record));
    }
    MR_ASSIGN_OR_RETURN(storage::SpillRun run, external_->file->FinishRun());
    external_->runs.push_back(run);
    ++spill_partitions_;
    buffer.clear();
    accountant.Reset();
    return Status::OK();
  };

  Row row;
  while (true) {
    MR_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
    if (!more) break;
    Row key;
    key.reserve(keys_.size());
    for (const SortKey& sk : keys_) {
      MR_ASSIGN_OR_RETURN(Value v, EvalExpr(*sk.expr, row, ctx_));
      key.push_back(std::move(v));
    }
    accountant.AddBytes(EstimateRowBytes(key) + EstimateRowBytes(row));
    buffer.emplace_back(std::move(key), std::move(row));
    if (accountant.OverBudget()) {
      if (external_ == nullptr) {
        external_ = std::make_unique<External>();
        MR_ASSIGN_OR_RETURN(external_->file,
                            storage::SpillFile::Create(ctx_->spill_dir));
      }
      MR_RETURN_IF_ERROR(write_run());
    }
  }

  if (external_ == nullptr) {
    // Never overflowed: finish exactly like the in-memory path — one stable
    // sort of the complete buffer with the same comparator and tie order.
    buffer_bytes_ = accountant.bytes();
    sort_buffer();
    rows_.reserve(buffer.size());
    for (auto& entry : buffer) rows_.push_back(std::move(entry.second));
    return Status::OK();
  }
  if (!buffer.empty()) MR_RETURN_IF_ERROR(write_run());
  buffer_bytes_ = accountant.peak();

  // Each run is a sorted, consecutive chunk of the input, so a merge that
  // breaks key ties by run order reproduces the global stable sort exactly.
  // Collapse to the fan-in first so the final merge holds a bounded number
  // of run readers; batches are taken in run order, which keeps the
  // tie-break consistent across passes.
  while (external_->runs.size() > kMergeFanIn) {
    std::vector<storage::SpillRun> collapsed;
    for (size_t begin = 0; begin < external_->runs.size();
         begin += kMergeFanIn) {
      const size_t end = std::min(external_->runs.size(), begin + kMergeFanIn);
      std::vector<External::Source> sources(end - begin);
      for (size_t i = begin; i < end; ++i) {
        sources[i - begin].reader =
            external_->file->OpenRun(external_->runs[i]);
        MR_RETURN_IF_ERROR(External::Advance(&sources[i - begin]));
      }
      while (true) {
        int best = -1;
        for (size_t i = 0; i < sources.size(); ++i) {
          if (sources[i].done) continue;
          // Strict comparison keeps the earliest source on ties (run order).
          if (best < 0 || KeyLess(sources[i].key, sources[best].key)) {
            best = static_cast<int>(i);
          }
        }
        if (best < 0) break;
        // Records carry their key, so merge passes append them verbatim.
        MR_RETURN_IF_ERROR(external_->file->Append(sources[best].record));
        MR_RETURN_IF_ERROR(External::Advance(&sources[best]));
      }
      MR_ASSIGN_OR_RETURN(storage::SpillRun merged,
                          external_->file->FinishRun());
      collapsed.push_back(merged);
      ++spill_partitions_;
    }
    external_->runs = std::move(collapsed);
  }

  external_->sources.resize(external_->runs.size());
  for (size_t i = 0; i < external_->runs.size(); ++i) {
    external_->sources[i].reader = external_->file->OpenRun(external_->runs[i]);
    MR_RETURN_IF_ERROR(External::Advance(&external_->sources[i]));
  }
  spill_bytes_ = static_cast<int64_t>(external_->file->bytes_written());
  SortSpillBytesCounter()->Add(spill_bytes_);
  SortSpillPartitionsCounter()->Add(spill_partitions_);
  return Status::OK();
}

Result<bool> SortNode::NextExternal(Row* out) {
  std::vector<External::Source>& sources = external_->sources;
  int best = -1;
  for (size_t i = 0; i < sources.size(); ++i) {
    if (sources[i].done) continue;
    if (best < 0 || KeyLess(sources[i].key, sources[best].key)) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return false;
  External::Source& source = sources[best];
  size_t pos = source.row_pos;
  MR_RETURN_IF_ERROR(
      storage::DecodeRow(source.record.data(), source.record.size(), &pos, out));
  MR_RETURN_IF_ERROR(External::Advance(&source));
  return true;
}

// ---------------------------------------------------------------------------
// HashJoinNode: recursive grace-hash join
// ---------------------------------------------------------------------------

HashJoinNode::~HashJoinNode() = default;

namespace {

/// Recursive grace-hash partition joiner. Operates purely on spill files —
/// everything it needs from the node is passed in, so it stays a plain
/// helper. Each leaf joins one partition in memory and appends its matches,
/// tagged with the probe-row index, to the shared output file.
struct GraceJoin {
  ExecContext* ctx;
  const Expr* residual;  // may be null
  storage::SpillFile* output;
  std::vector<storage::SpillRun>* output_runs;
  int64_t* spill_bytes;
  int64_t* spill_partitions;

  Status Process(const storage::SpillFile* build_file,
                 const std::vector<storage::SpillRun>& build_runs,
                 uint64_t build_records, uint64_t build_bytes,
                 const storage::SpillFile* probe_file,
                 const std::vector<storage::SpillRun>& probe_runs,
                 uint64_t probe_records, int depth, bool can_split) {
    if (build_records == 0 || probe_records == 0) return Status::OK();
    if (can_split && depth < kMaxSpillDepth && build_records > 1 &&
        build_bytes > static_cast<uint64_t>(ctx->memory_limit)) {
      return Recurse(build_file, build_runs, build_records, probe_file,
                     probe_runs, depth);
    }
    return Leaf(build_file, build_runs, build_records, probe_file, probe_runs);
  }

  /// Re-scatters both sides on the depth-seeded hash and recurses. A child
  /// that absorbed the whole parent (every key in one bucket again) loses
  /// can_split, which stops the recursion from chasing duplicate-heavy keys.
  Status Recurse(const storage::SpillFile* build_file,
                 const std::vector<storage::SpillRun>& build_runs,
                 uint64_t build_records, const storage::SpillFile* probe_file,
                 const std::vector<storage::SpillRun>& probe_runs, int depth) {
    const size_t fan_out = SpillFanOut(ctx);
    MR_ASSIGN_OR_RETURN(std::unique_ptr<storage::SpillFile> sub_build,
                        storage::SpillFile::Create(ctx->spill_dir));
    MR_ASSIGN_OR_RETURN(std::unique_ptr<storage::SpillFile> sub_probe,
                        storage::SpillFile::Create(ctx->spill_dir));
    PartitionedSpillWriter build_writer(sub_build.get(), fan_out);
    PartitionedSpillWriter probe_writer(sub_probe.get(), fan_out);
    std::string record;
    Row key;
    {
      PartitionReader reader(build_file, build_runs);
      while (true) {
        MR_ASSIGN_OR_RETURN(bool more, reader.Next(&record));
        if (!more) break;
        size_t pos = 0;
        MR_RETURN_IF_ERROR(
            storage::DecodeRow(record.data(), record.size(), &pos, &key));
        MR_RETURN_IF_ERROR(
            build_writer.Add(SpillHash(key, depth) % fan_out, record));
      }
      MR_RETURN_IF_ERROR(build_writer.Finish());
    }
    {
      PartitionReader reader(probe_file, probe_runs);
      uint64_t index = 0;
      while (true) {
        MR_ASSIGN_OR_RETURN(bool more, reader.Next(&record));
        if (!more) break;
        size_t pos = 0;
        MR_RETURN_IF_ERROR(
            storage::DecodeU64(record.data(), record.size(), &pos, &index));
        MR_RETURN_IF_ERROR(
            storage::DecodeRow(record.data(), record.size(), &pos, &key));
        MR_RETURN_IF_ERROR(
            probe_writer.Add(SpillHash(key, depth) % fan_out, record));
      }
      MR_RETURN_IF_ERROR(probe_writer.Finish());
    }
    *spill_bytes += static_cast<int64_t>(sub_build->bytes_written() +
                                         sub_probe->bytes_written());
    for (size_t p = 0; p < fan_out; ++p) {
      MR_RETURN_IF_ERROR(Process(sub_build.get(), build_writer.runs(p),
                                 build_writer.records(p),
                                 build_writer.bytes(p), sub_probe.get(),
                                 probe_writer.runs(p), probe_writer.records(p),
                                 depth + 1,
                                 build_writer.records(p) < build_records));
    }
    return Status::OK();
  }

  /// Joins one partition in memory. Partitioning preserved the append order
  /// of both sides, so the build table's buckets hold their rows in serial
  /// insertion order and the probe stream replays the probe input order —
  /// the output run carries strictly ascending probe indexes.
  Status Leaf(const storage::SpillFile* build_file,
              const std::vector<storage::SpillRun>& build_runs,
              uint64_t build_records, const storage::SpillFile* probe_file,
              const std::vector<storage::SpillRun>& probe_runs) {
    ++*spill_partitions;
    std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> table;
    table.reserve(static_cast<size_t>(build_records));
    {
      PartitionReader reader(build_file, build_runs);
      std::string record;
      while (true) {
        MR_ASSIGN_OR_RETURN(bool more, reader.Next(&record));
        if (!more) break;
        size_t pos = 0;
        Row key;
        Row row;
        MR_RETURN_IF_ERROR(
            storage::DecodeRow(record.data(), record.size(), &pos, &key));
        MR_RETURN_IF_ERROR(
            storage::DecodeRow(record.data(), record.size(), &pos, &row));
        table[std::move(key)].push_back(std::move(row));
      }
    }
    PartitionReader reader(probe_file, probe_runs);
    std::string record;
    std::string out_record;
    Row key;
    Row row;
    uint64_t index = 0;
    while (true) {
      MR_ASSIGN_OR_RETURN(bool more, reader.Next(&record));
      if (!more) break;
      size_t pos = 0;
      MR_RETURN_IF_ERROR(
          storage::DecodeU64(record.data(), record.size(), &pos, &index));
      MR_RETURN_IF_ERROR(
          storage::DecodeRow(record.data(), record.size(), &pos, &key));
      MR_RETURN_IF_ERROR(
          storage::DecodeRow(record.data(), record.size(), &pos, &row));
      auto it = table.find(key);
      if (it == table.end()) continue;
      for (const Row& build_row : it->second) {
        Row joined = SpillConcatRows(row, build_row);
        if (residual != nullptr) {
          MR_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*residual, joined, ctx));
          if (!pass) continue;
        }
        out_record.clear();
        storage::EncodeU64(index, &out_record);
        storage::EncodeRow(joined, &out_record);
        MR_RETURN_IF_ERROR(output->Append(out_record));
      }
    }
    MR_ASSIGN_OR_RETURN(storage::SpillRun run, output->FinishRun());
    if (run.records > 0) output_runs->push_back(run);
    return Status::OK();
  }
};

}  // namespace

Status HashJoinNode::OpenBudget() {
  // Build side under the accountant: within the budget this finishes as the
  // exact serial in-memory join; past it the build — and then the probe —
  // scatter to key-hash partitions, the partitions are joined independently
  // and the outputs merge back into probe order.
  MemoryAccountant accountant("sql.join.build_peak_bytes", ctx_->memory_limit);
  const size_t fan_out = SpillFanOut(ctx_);
  std::vector<std::pair<Row, Row>> buffer;  // (key, row) with non-NULL keys
  std::unique_ptr<storage::SpillFile> build_file;
  std::unique_ptr<PartitionedSpillWriter> build_writer;
  std::string record;
  Row row;
  Row key;
  int consumed_samples = 0;
  int64_t consumed_width = 0;

  auto spill_build = [&](const Row& k, const Row& r) -> Status {
    record.clear();
    storage::EncodeRow(k, &record);
    storage::EncodeRow(r, &record);
    return build_writer->Add(SpillHash(k, 0) % fan_out, record);
  };

  while (true) {
    MR_ASSIGN_OR_RETURN(bool more, right_->Next(&row));
    if (!more) break;
    ++build_consumed_rows_;
    if (consumed_samples < 64) {
      consumed_width += EstimateRowBytes(row);
      ++consumed_samples;
    }
    MR_ASSIGN_OR_RETURN(bool valid, ComputeKey(right_keys_, row, &key));
    if (!valid) continue;
    ++build_rows_;
    if (build_writer != nullptr) {
      MR_RETURN_IF_ERROR(spill_build(key, row));
      continue;
    }
    accountant.AddBytes(EstimateRowBytes(key) + EstimateRowBytes(row));
    buffer.emplace_back(std::move(key), std::move(row));
    if (accountant.OverBudget()) {
      MR_ASSIGN_OR_RETURN(build_file,
                          storage::SpillFile::Create(ctx_->spill_dir));
      build_writer = std::make_unique<PartitionedSpillWriter>(
          build_file.get(), fan_out);
      for (const auto& [buffered_key, buffered_row] : buffer) {
        MR_RETURN_IF_ERROR(spill_build(buffered_key, buffered_row));
      }
      buffer.clear();
      accountant.Reset();
    }
  }
  if (consumed_samples > 0) {
    build_consumed_bytes_ =
        build_consumed_rows_ * (consumed_width / consumed_samples);
  }
  // est_bytes reports the resident build working set: the full buffer when
  // it fit, the peak between spills when it did not. An all-NULL-key build
  // still materialized its input, so report the consumed-row estimate
  // rather than 0.
  build_bytes_ =
      build_writer != nullptr ? accountant.peak() : accountant.bytes();
  if (build_rows_ == 0 && build_consumed_rows_ > 0) {
    build_bytes_ = build_consumed_bytes_;
    GlobalMetrics()
        .GetGauge("sql.join.build_peak_bytes")
        ->UpdateMax(build_bytes_);
  }

  // An empty build side joins nothing: skip the probe-side scan entirely
  // when that subtree has no observable side effects to preserve.
  if (build_rows_ == 0 && left_->SideEffectFree()) {
    probe_skipped_ = true;
    current_bucket_ = nullptr;
    bucket_pos_ = 0;
    return Status::OK();
  }

  MR_RETURN_IF_ERROR(left_->Open());
  current_bucket_ = nullptr;
  bucket_pos_ = 0;
  if (build_writer == nullptr) {
    // Within budget: the buffered pairs become the serial hash table —
    // insertion order per bucket is build input order — and the probe
    // streams through the regular serial NextImpl.
    hash_table_.reserve(buffer.size());
    for (auto& [buffered_key, buffered_row] : buffer) {
      hash_table_[std::move(buffered_key)].push_back(std::move(buffered_row));
    }
    return Status::OK();
  }
  MR_RETURN_IF_ERROR(build_writer->Finish());

  // Grace mode: scatter the probe side to the same key-hash partitions,
  // tagging every row with its probe index so the merged output reproduces
  // the serial probe order.
  spill_ = std::make_unique<Spill>();
  spill_->build_file = std::move(build_file);
  MR_ASSIGN_OR_RETURN(spill_->probe_file,
                      storage::SpillFile::Create(ctx_->spill_dir));
  PartitionedSpillWriter probe_writer(spill_->probe_file.get(), fan_out);
  uint64_t probe_index = 0;
  while (true) {
    MR_ASSIGN_OR_RETURN(bool more, left_->Next(&row));
    if (!more) break;
    const uint64_t index = probe_index++;
    MR_ASSIGN_OR_RETURN(bool valid, ComputeKey(left_keys_, row, &key));
    if (!valid) continue;
    record.clear();
    storage::EncodeU64(index, &record);
    storage::EncodeRow(key, &record);
    storage::EncodeRow(row, &record);
    MR_RETURN_IF_ERROR(
        probe_writer.Add(SpillHash(key, 0) % fan_out, record));
  }
  MR_RETURN_IF_ERROR(probe_writer.Finish());
  MR_ASSIGN_OR_RETURN(spill_->output,
                      storage::SpillFile::Create(ctx_->spill_dir));

  GraceJoin grace{ctx_,
                  residual_.get(),
                  spill_->output.get(),
                  &spill_->output_runs,
                  &spill_bytes_,
                  &spill_partitions_};
  const uint64_t total_build = static_cast<uint64_t>(build_rows_);
  for (size_t p = 0; p < fan_out; ++p) {
    MR_RETURN_IF_ERROR(grace.Process(
        spill_->build_file.get(), build_writer->runs(p),
        build_writer->records(p), build_writer->bytes(p),
        spill_->probe_file.get(), probe_writer.runs(p),
        probe_writer.records(p), /*depth=*/1,
        build_writer->records(p) < total_build));
  }

  // Every probe index lives in exactly one output run, so merging runs by
  // their leading index is a disjoint interleave — no tie-break needed.
  // Collapse to the fan-in first to bound the final merge's reader count.
  while (spill_->output_runs.size() > kMergeFanIn) {
    std::vector<storage::SpillRun> collapsed;
    for (size_t begin = 0; begin < spill_->output_runs.size();
         begin += kMergeFanIn) {
      const size_t end =
          std::min(spill_->output_runs.size(), begin + kMergeFanIn);
      std::vector<Spill::Source> sources(end - begin);
      for (size_t i = begin; i < end; ++i) {
        sources[i - begin].reader =
            spill_->output->OpenRun(spill_->output_runs[i]);
        MR_RETURN_IF_ERROR(Spill::Advance(&sources[i - begin]));
      }
      while (true) {
        int best = -1;
        for (size_t i = 0; i < sources.size(); ++i) {
          if (sources[i].done) continue;
          if (best < 0 || sources[i].index < sources[best].index) {
            best = static_cast<int>(i);
          }
        }
        if (best < 0) break;
        MR_RETURN_IF_ERROR(spill_->output->Append(sources[best].record));
        MR_RETURN_IF_ERROR(Spill::Advance(&sources[best]));
      }
      MR_ASSIGN_OR_RETURN(storage::SpillRun merged,
                          spill_->output->FinishRun());
      if (merged.records > 0) collapsed.push_back(merged);
    }
    spill_->output_runs = std::move(collapsed);
  }

  spill_->sources.resize(spill_->output_runs.size());
  for (size_t i = 0; i < spill_->output_runs.size(); ++i) {
    spill_->sources[i].reader = spill_->output->OpenRun(spill_->output_runs[i]);
    MR_RETURN_IF_ERROR(Spill::Advance(&spill_->sources[i]));
  }
  spill_bytes_ += static_cast<int64_t>(spill_->build_file->bytes_written() +
                                       spill_->probe_file->bytes_written() +
                                       spill_->output->bytes_written());
  JoinSpillBytesCounter()->Add(spill_bytes_);
  JoinSpillPartitionsCounter()->Add(spill_partitions_);
  return Status::OK();
}

Result<bool> HashJoinNode::NextSpill(Row* out) {
  std::vector<Spill::Source>& sources = spill_->sources;
  int best = -1;
  for (size_t i = 0; i < sources.size(); ++i) {
    if (sources[i].done) continue;
    if (best < 0 || sources[i].index < sources[best].index) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return false;
  Spill::Source& source = sources[best];
  size_t pos = source.row_pos;
  MR_RETURN_IF_ERROR(
      storage::DecodeRow(source.record.data(), source.record.size(), &pos, out));
  MR_RETURN_IF_ERROR(Spill::Advance(&source));
  return true;
}

// ---------------------------------------------------------------------------
// HashAggregateNode: partitioned spilling aggregation
// ---------------------------------------------------------------------------

/// Descriptor of one spilled aggregate partition: a record extent in `file`
/// plus its totals, which decide whether the partition recurses.
struct AggPartitionInput {
  const storage::SpillFile* file = nullptr;
  const std::vector<storage::SpillRun>* runs = nullptr;
  uint64_t records = 0;
  uint64_t bytes = 0;
};

HashAggregateNode::~HashAggregateNode() = default;

Status HashAggregateNode::OpenBudget() {
  // Stream the child serially, evaluating group keys and aggregate
  // arguments per row in input order — the same evaluation order (and first
  // error) as the serial pass — into (input index, key, args) tuples
  // tracked by the accountant.
  MemoryAccountant accountant("sql.aggregate.table_peak_bytes",
                              ctx_->memory_limit);
  const size_t fan_out = SpillFanOut(ctx_);
  struct Tuple {
    uint64_t index = 0;
    Row key;
    Row args;
  };
  std::vector<Tuple> buffer;
  std::unique_ptr<storage::SpillFile> file;
  std::unique_ptr<PartitionedSpillWriter> writer;
  std::string record;

  auto spill_tuple = [&](const Tuple& tuple) -> Status {
    record.clear();
    storage::EncodeU64(tuple.index, &record);
    storage::EncodeRow(tuple.key, &record);
    storage::EncodeRow(tuple.args, &record);
    return writer->Add(SpillHash(tuple.key, 0) % fan_out, record);
  };

  Row row;
  uint64_t input_index = 0;
  while (true) {
    MR_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
    if (!more) break;
    Tuple tuple;
    tuple.index = input_index++;
    tuple.key.reserve(group_exprs_.size());
    for (const ExprPtr& e : group_exprs_) {
      MR_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, row, ctx_));
      tuple.key.push_back(std::move(v));
    }
    tuple.args.reserve(aggs_.size());
    for (const AggSpec& spec : aggs_) {
      Value arg;  // NULL placeholder for COUNT(*)
      if (spec.arg != nullptr) {
        MR_ASSIGN_OR_RETURN(arg, EvalExpr(*spec.arg, row, ctx_));
      }
      tuple.args.push_back(std::move(arg));
    }
    if (writer != nullptr) {
      MR_RETURN_IF_ERROR(spill_tuple(tuple));
      continue;
    }
    accountant.AddBytes(static_cast<int64_t>(sizeof(uint64_t)) +
                        EstimateRowBytes(tuple.key) +
                        EstimateRowBytes(tuple.args));
    buffer.push_back(std::move(tuple));
    if (accountant.OverBudget()) {
      MR_ASSIGN_OR_RETURN(file, storage::SpillFile::Create(ctx_->spill_dir));
      writer = std::make_unique<PartitionedSpillWriter>(file.get(), fan_out);
      for (const Tuple& buffered : buffer) {
        MR_RETURN_IF_ERROR(spill_tuple(buffered));
      }
      buffer.clear();
      accountant.Reset();
    }
  }

  std::vector<std::pair<uint64_t, Row>> groups_out;  // (first index, out row)
  if (writer == nullptr) {
    // Within budget: aggregate the buffered tuples in input order — the
    // same try_emplace/Add sequence as the serial pass, so the emission
    // order and every accumulator value match it exactly.
    std::unordered_map<Row, size_t, RowHash, RowEq> index;
    std::vector<Row> keys;
    std::vector<std::vector<AggAccumulator>> states;
    std::vector<uint64_t> first_index;
    for (Tuple& tuple : buffer) {
      auto [it, inserted] = index.try_emplace(tuple.key, keys.size());
      if (inserted) {
        keys.push_back(std::move(tuple.key));
        states.push_back(MakeAccumulators());
        first_index.push_back(tuple.index);
      }
      std::vector<AggAccumulator>& accs = states[it->second];
      for (size_t i = 0; i < aggs_.size(); ++i) {
        MR_RETURN_IF_ERROR(accs[i].Add(tuple.args[i]));
      }
    }
    groups_out.reserve(keys.size());
    for (size_t g = 0; g < keys.size(); ++g) {
      Row out = std::move(keys[g]);
      for (const AggAccumulator& acc : states[g]) {
        MR_ASSIGN_OR_RETURN(Value v, acc.Finish());
        out.push_back(std::move(v));
      }
      groups_out.emplace_back(first_index[g], std::move(out));
    }
  } else {
    MR_RETURN_IF_ERROR(writer->Finish());
    spill_bytes_ += static_cast<int64_t>(file->bytes_written());
    const uint64_t total = input_index;
    for (size_t p = 0; p < fan_out; ++p) {
      AggPartitionInput input;
      input.file = file.get();
      input.runs = &writer->runs(p);
      input.records = writer->records(p);
      input.bytes = writer->bytes(p);
      MR_RETURN_IF_ERROR(AggregatePartition(
          input, /*depth=*/1, writer->records(p) < total, &groups_out));
    }
    // Every group's first-occurrence index is unique, so sorting on it
    // reconstructs the serial first-seen emission order exactly.
    std::sort(groups_out.begin(), groups_out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    AggSpillBytesCounter()->Add(spill_bytes_);
    AggSpillPartitionsCounter()->Add(spill_partitions_);
  }

  results_.reserve(groups_out.size() + 1);
  for (auto& entry : groups_out) results_.push_back(std::move(entry.second));

  // Global aggregate over empty input still yields one row.
  if (group_exprs_.empty() && results_.empty()) {
    Row out;
    for (const AggAccumulator& acc : MakeAccumulators()) {
      MR_ASSIGN_OR_RETURN(Value v, acc.Finish());
      out.push_back(std::move(v));
    }
    results_.push_back(std::move(out));
  }
  table_bytes_ = AccountBufferBytes("sql.aggregate.table_peak_bytes", results_);
  return Status::OK();
}

Status HashAggregateNode::AggregatePartition(
    const AggPartitionInput& input, int depth, bool can_split,
    std::vector<std::pair<uint64_t, Row>>* out) {
  if (input.records == 0) return Status::OK();
  if (can_split && depth < kMaxSpillDepth && input.records > 1 &&
      input.bytes > static_cast<uint64_t>(ctx_->memory_limit)) {
    // Still over budget: re-scatter on the depth-seeded hash and recurse. A
    // child that absorbed the whole parent loses can_split, which stops the
    // recursion from chasing a single heavy group forever.
    MR_ASSIGN_OR_RETURN(std::unique_ptr<storage::SpillFile> file,
                        storage::SpillFile::Create(ctx_->spill_dir));
    const size_t fan_out = SpillFanOut(ctx_);
    PartitionedSpillWriter writer(file.get(), fan_out);
    {
      PartitionReader reader(input.file, *input.runs);
      std::string record;
      Row key;
      uint64_t index = 0;
      while (true) {
        MR_ASSIGN_OR_RETURN(bool more, reader.Next(&record));
        if (!more) break;
        size_t pos = 0;
        MR_RETURN_IF_ERROR(
            storage::DecodeU64(record.data(), record.size(), &pos, &index));
        MR_RETURN_IF_ERROR(
            storage::DecodeRow(record.data(), record.size(), &pos, &key));
        MR_RETURN_IF_ERROR(
            writer.Add(SpillHash(key, depth) % fan_out, record));
      }
      MR_RETURN_IF_ERROR(writer.Finish());
    }
    spill_bytes_ += static_cast<int64_t>(file->bytes_written());
    for (size_t p = 0; p < fan_out; ++p) {
      AggPartitionInput child;
      child.file = file.get();
      child.runs = &writer.runs(p);
      child.records = writer.records(p);
      child.bytes = writer.bytes(p);
      MR_RETURN_IF_ERROR(AggregatePartition(
          child, depth + 1, writer.records(p) < input.records, out));
    }
    return Status::OK();
  }

  // Leaf: aggregate this partition in record order. Partitioning preserved
  // the input order, so each group's Add sequence is an input-order
  // subsequence — order-sensitive accumulators (SUM/AVG over doubles) see
  // exactly the serial operand order.
  ++spill_partitions_;
  std::unordered_map<Row, size_t, RowHash, RowEq> index;
  std::vector<Row> keys;
  std::vector<std::vector<AggAccumulator>> states;
  std::vector<uint64_t> first_index;
  PartitionReader reader(input.file, *input.runs);
  std::string record;
  while (true) {
    MR_ASSIGN_OR_RETURN(bool more, reader.Next(&record));
    if (!more) break;
    size_t pos = 0;
    uint64_t tuple_index = 0;
    Row key;
    Row args;
    MR_RETURN_IF_ERROR(
        storage::DecodeU64(record.data(), record.size(), &pos, &tuple_index));
    MR_RETURN_IF_ERROR(
        storage::DecodeRow(record.data(), record.size(), &pos, &key));
    MR_RETURN_IF_ERROR(
        storage::DecodeRow(record.data(), record.size(), &pos, &args));
    auto [it, inserted] = index.try_emplace(key, keys.size());
    if (inserted) {
      keys.push_back(std::move(key));
      states.push_back(MakeAccumulators());
      first_index.push_back(tuple_index);
    }
    std::vector<AggAccumulator>& accs = states[it->second];
    for (size_t i = 0; i < aggs_.size(); ++i) {
      MR_RETURN_IF_ERROR(accs[i].Add(args[i]));
    }
  }
  for (size_t g = 0; g < keys.size(); ++g) {
    Row out_row = std::move(keys[g]);
    for (const AggAccumulator& acc : states[g]) {
      MR_ASSIGN_OR_RETURN(Value v, acc.Finish());
      out_row.push_back(std::move(v));
    }
    out->emplace_back(first_index[g], std::move(out_row));
  }
  return Status::OK();
}

}  // namespace minerule::sql
