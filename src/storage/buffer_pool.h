#ifndef MINERULE_STORAGE_BUFFER_POOL_H_
#define MINERULE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/page.h"
#include "storage/posix_file.h"

namespace minerule::storage {

class BufferPool;

/// RAII pin on one buffer-pool frame. While alive the page cannot be
/// evicted; data() points at the kPageSize frame bytes. Call MarkDirty()
/// after mutating so eviction (or FlushAll) writes the page back.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  char* data() const { return data_; }
  bool valid() const { return pool_ != nullptr; }
  void MarkDirty();
  void Release();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, size_t frame, char* data)
      : pool_(pool), frame_(frame), data_(data) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  char* data_ = nullptr;
};

/// Fixed-size page cache over PosixFile page stores (DESIGN.md §13): a page
/// table mapping (file id, page no) to frames, per-frame pin counts, clock
/// (second-chance) eviction, and dirty write-back. One coarse mutex guards
/// the metadata — the disk-backed paths are serial by design (spilling
/// operators run single-threaded), so contention is not a concern; the lock
/// simply keeps checkpoint/restore safe to run from any thread.
///
/// Metrics: storage.buffer_pool.{hits,misses,evictions,writebacks}.
class BufferPool {
 public:
  explicit BufferPool(size_t num_frames);
  ~BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page, reading it from the file on a miss. Reading past the
  /// current end of file yields a zeroed page (new pages need no explicit
  /// allocation call). Fails when every frame is pinned.
  Result<PageGuard> Fetch(PosixFile* file, uint64_t page_no);

  /// Pins a zeroed frame for the page without reading the file (for pages
  /// about to be fully overwritten); marks it dirty.
  Result<PageGuard> Create(PosixFile* file, uint64_t page_no);

  /// Writes back every dirty page of `file` (leaves them cached).
  Status FlushFile(PosixFile* file);

  /// Writes back every dirty page of `file` and drops its frames from the
  /// pool. Call before closing the file.
  Status EvictFile(PosixFile* file);

  /// Writes back every dirty page in the pool.
  Status FlushAll();

  size_t num_frames() const { return frames_.size(); }
  int64_t hits() const;
  int64_t misses() const;

 private:
  friend class PageGuard;

  struct Frame {
    PageKey key;
    PosixFile* file = nullptr;  // nullptr: frame unused
    int pin_count = 0;
    bool dirty = false;
    bool referenced = false;  // clock second-chance bit
    std::unique_ptr<char[]> data;
  };

  /// Finds a victim frame with the clock hand (pin_count == 0), writing it
  /// back if dirty. Requires mutex_ held. Fails when all frames are pinned.
  Result<size_t> EvictOne();

  Status WriteBack(Frame* frame);
  void Unpin(size_t frame);

  Result<PageGuard> FetchInternal(PosixFile* file, uint64_t page_no,
                                  bool read_from_disk);

  mutable std::mutex mutex_;
  std::vector<Frame> frames_;
  std::unordered_map<PageKey, size_t, PageKeyHash> page_table_;
  size_t clock_hand_ = 0;
};

}  // namespace minerule::storage

#endif  // MINERULE_STORAGE_BUFFER_POOL_H_
