#include "storage/table_heap.h"

#include <algorithm>
#include <cstring>

namespace minerule::storage {

namespace {

constexpr uint32_t kHeapMagic = 0x4d52'4850;  // "MRHP"

void PutU32(char* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}
void PutU64(char* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}
uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}
uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

Result<std::unique_ptr<TableHeap>> TableHeap::Create(BufferPool* pool,
                                                     PosixFile* file) {
  // Drop stale cached pages and on-disk content from any previous heap in
  // this file before starting over.
  MR_RETURN_IF_ERROR(pool->EvictFile(file));
  MR_RETURN_IF_ERROR(file->Truncate(0));
  return std::unique_ptr<TableHeap>(new TableHeap(pool, file));
}

Result<std::unique_ptr<TableHeap>> TableHeap::Open(BufferPool* pool,
                                                   PosixFile* file) {
  std::unique_ptr<TableHeap> heap(new TableHeap(pool, file));
  MR_ASSIGN_OR_RETURN(PageGuard header, pool->Fetch(file, 0));
  if (GetU32(header.data()) != kHeapMagic) {
    return Status::ExecutionError("'" + file->path() +
                                  "' is not a table heap (bad magic)");
  }
  heap->record_count_ = GetU64(header.data() + 8);
  heap->data_bytes_ = GetU64(header.data() + 16);
  return heap;
}

Status TableHeap::WriteBytes(uint64_t at, const char* src, size_t len) {
  while (len > 0) {
    const uint64_t page_no = 1 + at / kPageSize;
    const size_t in_page = static_cast<size_t>(at % kPageSize);
    const size_t chunk = std::min(len, kPageSize - in_page);
    // A write starting at a page boundary that covers a whole page — or
    // begins the page's first-ever bytes — never needs the old content;
    // Fetch still works but Create skips the read for the common
    // append-at-page-start case.
    PageGuard guard;
    if (in_page == 0 && at >= data_bytes_) {
      MR_ASSIGN_OR_RETURN(guard, pool_->Create(file_, page_no));
    } else {
      MR_ASSIGN_OR_RETURN(guard, pool_->Fetch(file_, page_no));
    }
    std::memcpy(guard.data() + in_page, src, chunk);
    guard.MarkDirty();
    at += chunk;
    src += chunk;
    len -= chunk;
  }
  return Status::OK();
}

Status TableHeap::ReadBytes(uint64_t at, char* dst, size_t len) const {
  while (len > 0) {
    const uint64_t page_no = 1 + at / kPageSize;
    const size_t in_page = static_cast<size_t>(at % kPageSize);
    const size_t chunk = std::min(len, kPageSize - in_page);
    MR_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(file_, page_no));
    std::memcpy(dst, guard.data() + in_page, chunk);
    at += chunk;
    dst += chunk;
    len -= chunk;
  }
  return Status::OK();
}

Status TableHeap::Append(std::string_view record) {
  char prefix[4];
  PutU32(prefix, static_cast<uint32_t>(record.size()));
  MR_RETURN_IF_ERROR(WriteBytes(data_bytes_, prefix, 4));
  MR_RETURN_IF_ERROR(WriteBytes(data_bytes_ + 4, record.data(), record.size()));
  data_bytes_ += 4 + record.size();
  ++record_count_;
  return Status::OK();
}

Status TableHeap::Finish() {
  MR_ASSIGN_OR_RETURN(PageGuard header, pool_->Create(file_, 0));
  PutU32(header.data(), kHeapMagic);
  PutU64(header.data() + 8, record_count_);
  PutU64(header.data() + 16, data_bytes_);
  header.MarkDirty();
  header.Release();
  return pool_->FlushFile(file_);
}

Result<bool> TableHeap::Scanner::Next(std::string* record) {
  if (seen_ >= heap_->record_count_) return false;
  char prefix[4];
  MR_RETURN_IF_ERROR(heap_->ReadBytes(offset_, prefix, 4));
  const uint32_t len = GetU32(prefix);
  if (offset_ + 4 + len > heap_->data_bytes_) {
    return Status::ExecutionError("corrupt table heap: record past the end");
  }
  record->resize(len);
  MR_RETURN_IF_ERROR(heap_->ReadBytes(offset_ + 4, record->data(), len));
  offset_ += 4 + len;
  ++seen_;
  return true;
}

}  // namespace minerule::storage
