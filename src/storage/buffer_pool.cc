#include "storage/buffer_pool.h"

#include <cstring>

#include "common/metrics.h"

namespace minerule::storage {

namespace {

Counter* HitCounter() {
  static Counter* c = GlobalMetrics().GetCounter("storage.buffer_pool.hits");
  return c;
}
Counter* MissCounter() {
  static Counter* c = GlobalMetrics().GetCounter("storage.buffer_pool.misses");
  return c;
}
Counter* EvictionCounter() {
  static Counter* c =
      GlobalMetrics().GetCounter("storage.buffer_pool.evictions");
  return c;
}
Counter* WritebackCounter() {
  static Counter* c =
      GlobalMetrics().GetCounter("storage.buffer_pool.writebacks");
  return c;
}

}  // namespace

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

void PageGuard::MarkDirty() {
  if (pool_ == nullptr) return;
  std::lock_guard<std::mutex> lock(pool_->mutex_);
  pool_->frames_[frame_].dirty = true;
}

void PageGuard::Release() {
  if (pool_ == nullptr) return;
  pool_->Unpin(frame_);
  pool_ = nullptr;
  data_ = nullptr;
}

BufferPool::BufferPool(size_t num_frames)
    : frames_(num_frames == 0 ? 1 : num_frames) {
  for (Frame& frame : frames_) {
    frame.data = std::make_unique<char[]>(kPageSize);
  }
  page_table_.reserve(frames_.size() * 2);
}

int64_t BufferPool::hits() const { return HitCounter()->Value(); }
int64_t BufferPool::misses() const { return MissCounter()->Value(); }

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  --frames_[frame].pin_count;
}

Status BufferPool::WriteBack(Frame* frame) {
  if (!frame->dirty) return Status::OK();
  MR_RETURN_IF_ERROR(frame->file->WriteAt(frame->key.page_no * kPageSize,
                                          frame->data.get(), kPageSize));
  frame->dirty = false;
  WritebackCounter()->Increment();
  return Status::OK();
}

Result<size_t> BufferPool::EvictOne() {
  // Clock sweep: skip pinned frames, give referenced frames a second
  // chance, take the first unreferenced unpinned frame. Two full sweeps
  // guarantee progress unless every frame is pinned.
  const size_t n = frames_.size();
  for (size_t step = 0; step < 2 * n; ++step) {
    Frame& frame = frames_[clock_hand_];
    const size_t index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (frame.file == nullptr) return index;  // unused frame
    if (frame.pin_count > 0) continue;
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    MR_RETURN_IF_ERROR(WriteBack(&frame));
    page_table_.erase(frame.key);
    frame.file = nullptr;
    EvictionCounter()->Increment();
    return index;
  }
  return Status::ExecutionError(
      "buffer pool exhausted: all " + std::to_string(n) +
      " frames are pinned (pin pressure exceeds the pool size)");
}

Result<PageGuard> BufferPool::FetchInternal(PosixFile* file, uint64_t page_no,
                                            bool read_from_disk) {
  std::lock_guard<std::mutex> lock(mutex_);
  const PageKey key{file->id(), page_no};
  auto it = page_table_.find(key);
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    ++frame.pin_count;
    frame.referenced = true;
    if (!read_from_disk) {
      // Create() promises a zeroed frame whether or not the page was cached.
      std::memset(frame.data.get(), 0, kPageSize);
      frame.dirty = true;
    }
    HitCounter()->Increment();
    return PageGuard(this, it->second, frame.data.get());
  }

  MissCounter()->Increment();
  MR_ASSIGN_OR_RETURN(size_t index, EvictOne());
  Frame& frame = frames_[index];
  if (read_from_disk) {
    // Pages past EOF read as zeroes: a fresh page needs no allocation step.
    MR_ASSIGN_OR_RETURN(size_t got, file->ReadAtPartial(page_no * kPageSize,
                                                        frame.data.get(),
                                                        kPageSize));
    if (got < kPageSize) {
      std::memset(frame.data.get() + got, 0, kPageSize - got);
    }
  } else {
    std::memset(frame.data.get(), 0, kPageSize);
  }
  frame.key = key;
  frame.file = file;
  frame.pin_count = 1;
  frame.dirty = !read_from_disk;
  frame.referenced = true;
  page_table_[key] = index;
  return PageGuard(this, index, frame.data.get());
}

Result<PageGuard> BufferPool::Fetch(PosixFile* file, uint64_t page_no) {
  return FetchInternal(file, page_no, /*read_from_disk=*/true);
}

Result<PageGuard> BufferPool::Create(PosixFile* file, uint64_t page_no) {
  return FetchInternal(file, page_no, /*read_from_disk=*/false);
}

Status BufferPool::FlushFile(PosixFile* file) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Frame& frame : frames_) {
    if (frame.file == file) MR_RETURN_IF_ERROR(WriteBack(&frame));
  }
  return Status::OK();
}

Status BufferPool::EvictFile(PosixFile* file) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Frame& frame : frames_) {
    if (frame.file != file) continue;
    if (frame.pin_count > 0) {
      return Status::Internal("EvictFile('" + file->path() +
                              "') with pinned pages outstanding");
    }
    MR_RETURN_IF_ERROR(WriteBack(&frame));
    page_table_.erase(frame.key);
    frame.file = nullptr;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Frame& frame : frames_) {
    if (frame.file != nullptr) MR_RETURN_IF_ERROR(WriteBack(&frame));
  }
  return Status::OK();
}

}  // namespace minerule::storage
