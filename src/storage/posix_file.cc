#include "storage/posix_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace minerule::storage {

namespace {

std::atomic<uint64_t> g_next_file_id{1};

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::ExecutionError(what + " failed for '" + path +
                                "': " + std::strerror(errno));
}

}  // namespace

PosixFile::PosixFile(int fd, std::string path)
    : fd_(fd),
      id_(g_next_file_id.fetch_add(1, std::memory_order_relaxed)),
      path_(std::move(path)) {}

PosixFile::~PosixFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<PosixFile>> PosixFile::Open(const std::string& path,
                                                   bool create) {
  int flags = O_RDWR | O_CLOEXEC;
  if (create) flags |= O_CREAT;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  return std::unique_ptr<PosixFile>(new PosixFile(fd, path));
}

Result<std::unique_ptr<PosixFile>> PosixFile::CreateTemp(
    const std::string& dir) {
  std::string base = dir;
  if (base.empty()) {
    const char* env = std::getenv("TMPDIR");
    base = (env != nullptr && env[0] != '\0') ? env : "/tmp";
  }
  std::string tmpl = base + "/minerule-spill-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  int fd = ::mkstemp(buf.data());
  if (fd < 0) return ErrnoStatus("mkstemp", tmpl);
  // Unlink immediately: the file stays alive through the descriptor alone,
  // so spill data can never leak into the filesystem, even on a crash.
  if (::unlink(buf.data()) != 0) {
    ::close(fd);
    return ErrnoStatus("unlink", buf.data());
  }
  return std::unique_ptr<PosixFile>(new PosixFile(fd, buf.data()));
}

Status PosixFile::ReadAt(uint64_t offset, void* buf, size_t len) const {
  MR_ASSIGN_OR_RETURN(size_t got, ReadAtPartial(offset, buf, len));
  if (got != len) {
    return Status::ExecutionError(
        "short read from '" + path_ + "': wanted " + std::to_string(len) +
        " bytes at offset " + std::to_string(offset) + ", got " +
        std::to_string(got));
  }
  return Status::OK();
}

Result<size_t> PosixFile::ReadAtPartial(uint64_t offset, void* buf,
                                        size_t len) const {
  char* dst = static_cast<char*>(buf);
  size_t total = 0;
  while (total < len) {
    ssize_t n = ::pread(fd_, dst + total, len - total,
                        static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread", path_);
    }
    if (n == 0) break;  // EOF
    total += static_cast<size_t>(n);
  }
  return total;
}

Status PosixFile::WriteAt(uint64_t offset, const void* buf, size_t len) {
  const char* src = static_cast<const char*>(buf);
  size_t total = 0;
  while (total < len) {
    ssize_t n = ::pwrite(fd_, src + total, len - total,
                         static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite", path_);
    }
    total += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<uint64_t> PosixFile::Size() const {
  off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) return ErrnoStatus("lseek", path_);
  return static_cast<uint64_t>(end);
}

Status PosixFile::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("ftruncate", path_);
  }
  return Status::OK();
}

Status PosixFile::Sync() {
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  return Status::OK();
}

}  // namespace minerule::storage
