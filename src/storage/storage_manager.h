#ifndef MINERULE_STORAGE_STORAGE_MANAGER_H_
#define MINERULE_STORAGE_STORAGE_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "relational/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/posix_file.h"

namespace minerule::storage {

/// Durable home of a catalog (DESIGN.md §13): a directory holding one text
/// catalog file (`minerule.cat` — schemas, view SQL, sequence positions,
/// and the heap-file directory) plus one paged TableHeap file per table,
/// all I/O going through a shared fixed-size buffer pool. Tables survive a
/// process restart: Checkpoint() writes the current catalog, Restore() on a
/// fresh Catalog reloads it.
///
/// Checkpoints are incremental: a table whose modification epoch
/// (Table::version) is unchanged since the last checkpoint or restore keeps
/// its heap file untouched; the catalog file itself is rewritten atomically
/// (temp file + rename).
class StorageManager {
 public:
  /// Opens (creating if needed) the storage directory and reads the
  /// existing catalog file's manifest, if any.
  static Result<std::unique_ptr<StorageManager>> Open(const std::string& dir,
                                                      size_t pool_frames = 256);

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Persists the whole catalog: dirty (or new) tables are rewritten to
  /// their heaps, dropped tables' heap files are deleted, then the catalog
  /// file is atomically replaced.
  Status Checkpoint(const Catalog& catalog);

  /// Loads every persisted table, view and sequence into `catalog`, which
  /// must not already contain objects with those names.
  Status Restore(Catalog* catalog);

  BufferPool* buffer_pool() { return &pool_; }
  const std::string& dir() const { return dir_; }

 private:
  StorageManager(std::string dir, size_t pool_frames)
      : dir_(std::move(dir)), pool_(pool_frames) {}

  struct TableState {
    std::string file_name;       // heap file, relative to dir_
    uint64_t version = 0;        // Table::version at last checkpoint/restore
    uint64_t rows = 0;
    std::vector<std::pair<std::string, std::string>> columns;  // name, type
  };

  Status LoadManifest();
  Status WriteCatalogFile(const Catalog& catalog);
  Result<PosixFile*> OpenHeapFile(const std::string& file_name);

  std::string dir_;
  BufferPool pool_;
  /// Persisted table states by (case-preserved) table name.
  std::map<std::string, TableState> tables_;
  std::vector<std::pair<std::string, std::string>> views_;      // name, sql
  std::vector<std::pair<std::string, int64_t>> sequences_;      // name, next
  std::map<std::string, std::unique_ptr<PosixFile>> open_files_;
  int next_slot_ = 0;
};

}  // namespace minerule::storage

#endif  // MINERULE_STORAGE_STORAGE_MANAGER_H_
