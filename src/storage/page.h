#ifndef MINERULE_STORAGE_PAGE_H_
#define MINERULE_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>

namespace minerule::storage {

/// Fixed page size of the disk-backed storage layer (DESIGN.md §13). Every
/// page file is a sequence of kPageSize-byte pages addressed by page number;
/// the buffer pool caches whole pages.
inline constexpr size_t kPageSize = 8192;

/// A page's identity inside the buffer pool: which file (by the file's
/// process-unique id) and which page within it.
struct PageKey {
  uint64_t file_id = 0;
  uint64_t page_no = 0;

  bool operator==(const PageKey&) const = default;
};

struct PageKeyHash {
  size_t operator()(const PageKey& key) const {
    // splitmix64 over the two coordinates; cheap and well-distributed.
    uint64_t x = key.file_id * 0x9e3779b97f4a7c15ULL + key.page_no;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

}  // namespace minerule::storage

#endif  // MINERULE_STORAGE_PAGE_H_
