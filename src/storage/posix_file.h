#ifndef MINERULE_STORAGE_POSIX_FILE_H_
#define MINERULE_STORAGE_POSIX_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"

namespace minerule::storage {

/// Thin RAII wrapper over a POSIX file descriptor with positional I/O
/// (pread/pwrite), the page store underneath the buffer pool and the spill
/// files. No internal buffering: callers (BufferPool, SpillFile) manage
/// their own caching.
class PosixFile {
 public:
  /// Opens (or with `create`, creates/truncates-nothing) a file for
  /// read/write. Created files get mode 0644.
  static Result<std::unique_ptr<PosixFile>> Open(const std::string& path,
                                                 bool create);

  /// Creates an anonymous temp file in `dir` (empty means $TMPDIR or /tmp):
  /// mkstemp followed by an immediate unlink, so the data lives only as
  /// long as the descriptor and can never be leaked into the filesystem,
  /// even on crash or error mid-spill.
  static Result<std::unique_ptr<PosixFile>> CreateTemp(const std::string& dir);

  ~PosixFile();
  PosixFile(const PosixFile&) = delete;
  PosixFile& operator=(const PosixFile&) = delete;

  /// Reads exactly `len` bytes at `offset`; short reads (EOF) are an error.
  Status ReadAt(uint64_t offset, void* buf, size_t len) const;

  /// Like ReadAt but tolerates EOF: returns the number of bytes read
  /// (possibly < len, 0 at or past EOF).
  Result<size_t> ReadAtPartial(uint64_t offset, void* buf, size_t len) const;

  /// Writes exactly `len` bytes at `offset`, extending the file as needed.
  Status WriteAt(uint64_t offset, const void* buf, size_t len);

  Result<uint64_t> Size() const;
  Status Truncate(uint64_t size);
  Status Sync();

  /// Process-unique id, the buffer pool's file coordinate (PageKey).
  uint64_t id() const { return id_; }
  const std::string& path() const { return path_; }

 private:
  PosixFile(int fd, std::string path);

  int fd_ = -1;
  uint64_t id_ = 0;
  std::string path_;
};

}  // namespace minerule::storage

#endif  // MINERULE_STORAGE_POSIX_FILE_H_
