#include "storage/storage_manager.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "storage/row_codec.h"
#include "storage/table_heap.h"

namespace minerule::storage {

namespace {

/// Percent-escaping for names, view SQL and type names in the catalog file:
/// '%', whitespace and control bytes become %XX, so arbitrary identifiers
/// and statements survive the line/space-delimited format (same scheme as
/// relational/catalog_io.cc).
std::string Escape(const std::string& in) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(in.size());
  for (unsigned char c : in) {
    if (c == '%' || c <= ' ' || c == 0x7f) {
      out.push_back('%');
      out.push_back(hex[c >> 4]);
      out.push_back(hex[c & 0xf]);
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

Result<std::string> Unescape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '%') {
      out.push_back(in[i]);
      continue;
    }
    if (i + 2 >= in.size()) {
      return Status::ExecutionError("corrupt catalog file: bad escape");
    }
    auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    const int hi = nibble(in[i + 1]);
    const int lo = nibble(in[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::ExecutionError("corrupt catalog file: bad escape");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

constexpr const char* kCatalogFile = "minerule.cat";
constexpr const char* kCatalogHeader = "MINERULE-STORE 1";

}  // namespace

Result<std::unique_ptr<StorageManager>> StorageManager::Open(
    const std::string& dir, size_t pool_frames) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::ExecutionError("cannot create storage directory '" + dir +
                                  "': " + std::strerror(errno));
  }
  std::unique_ptr<StorageManager> mgr(new StorageManager(dir, pool_frames));
  MR_RETURN_IF_ERROR(mgr->LoadManifest());
  return mgr;
}

Status StorageManager::LoadManifest() {
  std::ifstream in(dir_ + "/" + kCatalogFile);
  if (!in.is_open()) return Status::OK();  // fresh directory
  std::string line;
  if (!std::getline(in, line) || line != kCatalogHeader) {
    return Status::ExecutionError("'" + dir_ + "/" + kCatalogFile +
                                  "' is not a minerule catalog file");
  }
  TableState* current = nullptr;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "T") {
      std::string name, file;
      uint64_t rows = 0;
      fields >> name >> file >> rows;
      if (fields.fail()) {
        return Status::ExecutionError("corrupt catalog file: bad T line");
      }
      MR_ASSIGN_OR_RETURN(name, Unescape(name));
      TableState state;
      state.file_name = file;
      state.rows = rows;
      current = &tables_.emplace(name, std::move(state)).first->second;
      // Keep slot numbering above every persisted file (t<N>.mrh).
      int slot = 0;
      if (std::sscanf(file.c_str(), "t%d.mrh", &slot) == 1) {
        next_slot_ = std::max(next_slot_, slot + 1);
      }
    } else if (kind == "C") {
      std::string col, type;
      fields >> col >> type;
      if (fields.fail() || current == nullptr) {
        return Status::ExecutionError("corrupt catalog file: bad C line");
      }
      MR_ASSIGN_OR_RETURN(col, Unescape(col));
      current->columns.emplace_back(col, type);
    } else if (kind == "V") {
      std::string name, sql;
      fields >> name >> sql;
      if (fields.fail()) {
        return Status::ExecutionError("corrupt catalog file: bad V line");
      }
      MR_ASSIGN_OR_RETURN(name, Unescape(name));
      MR_ASSIGN_OR_RETURN(sql, Unescape(sql));
      views_.emplace_back(name, sql);
    } else if (kind == "Q") {
      std::string name;
      int64_t next = 0;
      fields >> name >> next;
      if (fields.fail()) {
        return Status::ExecutionError("corrupt catalog file: bad Q line");
      }
      MR_ASSIGN_OR_RETURN(name, Unescape(name));
      sequences_.emplace_back(name, next);
    } else {
      return Status::ExecutionError("corrupt catalog file: unknown line '" +
                                    line + "'");
    }
  }
  return Status::OK();
}

Result<PosixFile*> StorageManager::OpenHeapFile(const std::string& file_name) {
  auto it = open_files_.find(file_name);
  if (it != open_files_.end()) return it->second.get();
  MR_ASSIGN_OR_RETURN(std::unique_ptr<PosixFile> file,
                      PosixFile::Open(dir_ + "/" + file_name, true));
  PosixFile* raw = file.get();
  open_files_[file_name] = std::move(file);
  return raw;
}

Status StorageManager::WriteCatalogFile(const Catalog& catalog) {
  const std::string tmp_path = dir_ + "/" + kCatalogFile + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out.is_open()) {
      return Status::ExecutionError("cannot write '" + tmp_path + "'");
    }
    out << kCatalogHeader << "\n";
    for (const std::string& name : catalog.TableNames()) {
      const TableState& state = tables_.at(name);
      out << "T " << Escape(name) << " " << state.file_name << " "
          << state.rows << "\n";
      for (const auto& [col, type] : state.columns) {
        out << "C " << Escape(col) << " " << type << "\n";
      }
    }
    for (const std::string& name : catalog.ViewNames()) {
      MR_ASSIGN_OR_RETURN(ViewDef view, catalog.GetView(name));
      out << "V " << Escape(name) << " " << Escape(view.select_sql) << "\n";
    }
    for (const std::string& name : catalog.SequenceNames()) {
      MR_ASSIGN_OR_RETURN(const Sequence* seq, catalog.GetSequence(name));
      out << "Q " << Escape(name) << " " << seq->PeekNext() << "\n";
    }
    out.flush();
    if (!out.good()) {
      return Status::ExecutionError("write to '" + tmp_path + "' failed");
    }
  }
  const std::string final_path = dir_ + "/" + kCatalogFile;
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::ExecutionError("rename '" + tmp_path + "' -> '" +
                                  final_path +
                                  "' failed: " + std::strerror(errno));
  }
  return Status::OK();
}

Status StorageManager::Checkpoint(const Catalog& catalog) {
  // Rewrite the heap of every new-or-modified table.
  for (const std::string& name : catalog.TableNames()) {
    MR_ASSIGN_OR_RETURN(std::shared_ptr<Table> table, catalog.GetTable(name));
    auto it = tables_.find(name);
    if (it != tables_.end() && it->second.version == table->version()) {
      continue;  // unchanged since the last checkpoint/restore
    }
    TableState state;
    if (it != tables_.end()) {
      state.file_name = it->second.file_name;
    } else {
      state.file_name = "t";
      state.file_name += std::to_string(next_slot_++);
      state.file_name += ".mrh";
    }
    state.version = table->version();
    state.rows = table->num_rows();
    for (const Column& col : table->schema().columns()) {
      state.columns.emplace_back(col.name, DataTypeName(col.type));
    }
    MR_ASSIGN_OR_RETURN(PosixFile* file, OpenHeapFile(state.file_name));
    MR_ASSIGN_OR_RETURN(std::unique_ptr<TableHeap> heap,
                        TableHeap::Create(&pool_, file));
    std::string record;
    for (const Row& row : table->rows()) {
      record.clear();
      EncodeRow(row, &record);
      MR_RETURN_IF_ERROR(heap->Append(record));
    }
    MR_RETURN_IF_ERROR(heap->Finish());
    MR_RETURN_IF_ERROR(file->Sync());
    tables_[name] = std::move(state);
  }

  // Remove heaps of tables that no longer exist.
  for (auto it = tables_.begin(); it != tables_.end();) {
    if (catalog.HasTable(it->first)) {
      ++it;
      continue;
    }
    auto open = open_files_.find(it->second.file_name);
    if (open != open_files_.end()) {
      MR_RETURN_IF_ERROR(pool_.EvictFile(open->second.get()));
      open_files_.erase(open);
    }
    ::unlink((dir_ + "/" + it->second.file_name).c_str());
    it = tables_.erase(it);
  }

  return WriteCatalogFile(catalog);
}

Status StorageManager::Restore(Catalog* catalog) {
  for (auto& [name, state] : tables_) {
    Schema schema;
    for (const auto& [col, type_name] : state.columns) {
      MR_ASSIGN_OR_RETURN(DataType type, DataTypeFromName(type_name));
      schema.AddColumn(Column{col, type});
    }
    MR_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                        catalog->CreateTable(name, std::move(schema)));
    MR_ASSIGN_OR_RETURN(PosixFile* file, OpenHeapFile(state.file_name));
    MR_ASSIGN_OR_RETURN(std::unique_ptr<TableHeap> heap,
                        TableHeap::Open(&pool_, file));
    table->Reserve(heap->record_count());
    TableHeap::Scanner scanner = heap->Scan();
    std::string record;
    Row row;
    while (true) {
      MR_ASSIGN_OR_RETURN(bool more, scanner.Next(&record));
      if (!more) break;
      size_t pos = 0;
      MR_RETURN_IF_ERROR(DecodeRow(record.data(), record.size(), &pos, &row));
      table->AppendUnchecked(std::move(row));
      row = Row();
    }
    if (table->num_rows() != state.rows) {
      return Status::ExecutionError(
          "table '" + name + "' heap holds " +
          std::to_string(table->num_rows()) + " rows, catalog recorded " +
          std::to_string(state.rows));
    }
    // The freshly loaded table counts as checkpointed at its current
    // version, so an immediate Checkpoint skips the rewrite.
    state.version = table->version();
  }
  for (const auto& [name, sql] : views_) {
    MR_RETURN_IF_ERROR(catalog->CreateView(name, sql));
  }
  for (const auto& [name, next] : sequences_) {
    MR_RETURN_IF_ERROR(catalog->CreateSequence(name, next));
  }
  return Status::OK();
}

}  // namespace minerule::storage
