#ifndef MINERULE_STORAGE_ROW_CODEC_H_
#define MINERULE_STORAGE_ROW_CODEC_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "relational/schema.h"

namespace minerule::storage {

/// Binary Row serialization used by the spill files and the paged table
/// heaps. The encoding is exact: INTEGER/DATE as fixed-width little-endian,
/// DOUBLE as its IEEE bit pattern, strings as length-prefixed bytes — a
/// decoded row is bit-identical to the encoded one, which is what lets the
/// spill paths promise byte-identical query results (DESIGN.md §13).
///
/// Layout: u32 value count, then per value a 1-byte type tag
/// (N/B/I/D/S/T for NULL/BOOLEAN/INTEGER/DOUBLE/STRING/DATE) and the
/// payload (B: 1 byte; I/D: 8 bytes; T: 4 bytes; S: u32 length + bytes).

/// Appends the encoding of `row` to *out.
void EncodeRow(const Row& row, std::string* out);

/// Appends a u64 in little-endian (spill-record index prefixes).
void EncodeU64(uint64_t v, std::string* out);

/// Decodes one row starting at data[*pos], advancing *pos past it.
Status DecodeRow(const char* data, size_t len, size_t* pos, Row* out);

/// Decodes a little-endian u64 at data[*pos], advancing *pos.
Status DecodeU64(const char* data, size_t len, size_t* pos, uint64_t* out);

}  // namespace minerule::storage

#endif  // MINERULE_STORAGE_ROW_CODEC_H_
