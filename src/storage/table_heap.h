#ifndef MINERULE_STORAGE_TABLE_HEAP_H_
#define MINERULE_STORAGE_TABLE_HEAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/posix_file.h"

namespace minerule::storage {

/// Paged record heap: the on-disk representation of one table's rows,
/// accessed exclusively through the buffer pool (DESIGN.md §13).
///
/// Page 0 is the header (magic, record count, data byte length — the page
/// directory of the heap); pages 1..N hold the records as one contiguous
/// byte stream of [u32 length][payload] entries that may span page
/// boundaries, addressed as data byte offsets (byte o lives on page
/// 1 + o / kPageSize at offset o % kPageSize).
class TableHeap {
 public:
  /// Starts an empty heap over `file` (truncates any previous content).
  static Result<std::unique_ptr<TableHeap>> Create(BufferPool* pool,
                                                   PosixFile* file);

  /// Opens an existing heap, validating the header.
  static Result<std::unique_ptr<TableHeap>> Open(BufferPool* pool,
                                                 PosixFile* file);

  /// Appends one record through the buffer pool.
  Status Append(std::string_view record);

  /// Writes the header and flushes every dirty page of the file.
  Status Finish();

  uint64_t record_count() const { return record_count_; }
  uint64_t data_bytes() const { return data_bytes_; }

  /// Sequential scan over the records, pulling pages through the pool.
  class Scanner {
   public:
    Result<bool> Next(std::string* record);

   private:
    friend class TableHeap;
    explicit Scanner(const TableHeap* heap) : heap_(heap) {}

    const TableHeap* heap_ = nullptr;
    uint64_t offset_ = 0;  // data byte offset
    uint64_t seen_ = 0;
  };

  Scanner Scan() const { return Scanner(this); }

 private:
  TableHeap(BufferPool* pool, PosixFile* file)
      : pool_(pool), file_(file) {}

  /// Copies `len` bytes to/from the data byte stream at offset `at`,
  /// fetching (or creating, when writing past the end) pages as needed.
  Status WriteBytes(uint64_t at, const char* src, size_t len);
  Status ReadBytes(uint64_t at, char* dst, size_t len) const;

  BufferPool* pool_;
  PosixFile* file_;
  uint64_t record_count_ = 0;
  uint64_t data_bytes_ = 0;
};

}  // namespace minerule::storage

#endif  // MINERULE_STORAGE_TABLE_HEAP_H_
