#ifndef MINERULE_STORAGE_SPILL_H_
#define MINERULE_STORAGE_SPILL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/posix_file.h"

namespace minerule::storage {

/// One contiguous extent of records inside a SpillFile: the unit the
/// external sort and the grace-hash partitions hand around (a sorted run, a
/// build/probe partition, a merged output chunk).
struct SpillRun {
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint64_t records = 0;
};

/// An anonymous (created-and-unlinked) temp file holding length-prefixed
/// records grouped into sequential runs. Writes are buffered and append to
/// the tail; FinishRun() closes the current run and returns its extent.
/// Runs already finished can be read back concurrently with further
/// appends (readers pread fixed extents), which is what the multi-pass
/// merges rely on. Because the file is unlinked at creation, spill data is
/// reclaimed by the kernel as soon as the SpillFile dies — an error midway
/// through a spill can never leak files into /tmp.
class SpillFile {
 public:
  /// `dir` empty means $TMPDIR or /tmp.
  static Result<std::unique_ptr<SpillFile>> Create(const std::string& dir);

  /// Appends one record (u32 length + payload) to the current run.
  Status Append(std::string_view record);

  /// Flushes buffered writes, ends the current run, returns its extent, and
  /// starts a fresh (empty) run at the tail.
  Result<SpillRun> FinishRun();

  /// Total record payload + framing bytes written so far (the
  /// sql.*.spill_bytes metric source).
  uint64_t bytes_written() const { return tail_; }

  /// Sequential reader over one run's records, with its own read buffer.
  /// Valid only for runs returned by FinishRun() on the same SpillFile; the
  /// SpillFile must outlive the reader.
  class Reader {
   public:
    Reader() = default;

    /// Reads the next record into *record; false at end of the run.
    Result<bool> Next(std::string* record);

   private:
    friend class SpillFile;
    Reader(const PosixFile* file, SpillRun run)
        : file_(file), run_(run), pos_(run.offset) {}

    Status Refill(size_t need);

    const PosixFile* file_ = nullptr;
    SpillRun run_;
    uint64_t pos_ = 0;        // absolute file offset of the next unread byte
    std::string buffer_;      // window starting at buffer_start_
    uint64_t buffer_start_ = 0;
    uint64_t read_records_ = 0;
  };

  Reader OpenRun(const SpillRun& run) const { return Reader(file_.get(), run); }

 private:
  explicit SpillFile(std::unique_ptr<PosixFile> file)
      : file_(std::move(file)) {}

  Status FlushBuffer();

  std::unique_ptr<PosixFile> file_;
  std::string write_buffer_;
  uint64_t tail_ = 0;       // file offset one past the last flushed byte
  uint64_t run_start_ = 0;  // offset where the current run began
  uint64_t run_records_ = 0;
};

}  // namespace minerule::storage

#endif  // MINERULE_STORAGE_SPILL_H_
