#include "storage/row_codec.h"

#include <cstring>

namespace minerule::storage {

namespace {

void EncodeU32(uint32_t v, std::string* out) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 4);
}

void EncodeFixed64(uint64_t v, std::string* out) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 8);
}

Status Underflow(const char* what) {
  return Status::ExecutionError(std::string("corrupt spill/heap record: "
                                            "truncated ") +
                                what);
}

Status DecodeU32(const char* data, size_t len, size_t* pos, uint32_t* out) {
  if (*pos + 4 > len) return Underflow("u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data[*pos + i]))
         << (8 * i);
  }
  *pos += 4;
  *out = v;
  return Status::OK();
}

}  // namespace

void EncodeU64(uint64_t v, std::string* out) { EncodeFixed64(v, out); }

Status DecodeU64(const char* data, size_t len, size_t* pos, uint64_t* out) {
  if (*pos + 8 > len) return Underflow("u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data[*pos + i]))
         << (8 * i);
  }
  *pos += 8;
  *out = v;
  return Status::OK();
}

void EncodeRow(const Row& row, std::string* out) {
  EncodeU32(static_cast<uint32_t>(row.size()), out);
  for (const Value& v : row) {
    switch (v.type()) {
      case DataType::kNull:
        out->push_back('N');
        break;
      case DataType::kBoolean:
        out->push_back('B');
        out->push_back(v.AsBoolean() ? 1 : 0);
        break;
      case DataType::kInteger:
        out->push_back('I');
        EncodeFixed64(static_cast<uint64_t>(v.AsInteger()), out);
        break;
      case DataType::kDouble: {
        out->push_back('D');
        double d = v.AsDouble();
        uint64_t bits;
        std::memcpy(&bits, &d, 8);  // exact IEEE bit pattern
        EncodeFixed64(bits, out);
        break;
      }
      case DataType::kString: {
        out->push_back('S');
        const std::string& s = v.AsString();
        EncodeU32(static_cast<uint32_t>(s.size()), out);
        out->append(s);
        break;
      }
      case DataType::kDate:
        out->push_back('T');
        EncodeU32(static_cast<uint32_t>(v.AsDate()), out);
        break;
    }
  }
}

Status DecodeRow(const char* data, size_t len, size_t* pos, Row* out) {
  uint32_t count = 0;
  MR_RETURN_IF_ERROR(DecodeU32(data, len, pos, &count));
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (*pos >= len) return Underflow("value tag");
    const char tag = data[(*pos)++];
    switch (tag) {
      case 'N':
        out->push_back(Value::Null());
        break;
      case 'B':
        if (*pos >= len) return Underflow("boolean");
        out->push_back(Value::Boolean(data[(*pos)++] != 0));
        break;
      case 'I': {
        uint64_t bits = 0;
        MR_RETURN_IF_ERROR(DecodeU64(data, len, pos, &bits));
        out->push_back(Value::Integer(static_cast<int64_t>(bits)));
        break;
      }
      case 'D': {
        uint64_t bits = 0;
        MR_RETURN_IF_ERROR(DecodeU64(data, len, pos, &bits));
        double d;
        std::memcpy(&d, &bits, 8);
        out->push_back(Value::Double(d));
        break;
      }
      case 'S': {
        uint32_t n = 0;
        MR_RETURN_IF_ERROR(DecodeU32(data, len, pos, &n));
        if (*pos + n > len) return Underflow("string payload");
        out->push_back(Value::String(std::string(data + *pos, n)));
        *pos += n;
        break;
      }
      case 'T': {
        uint32_t days = 0;
        MR_RETURN_IF_ERROR(DecodeU32(data, len, pos, &days));
        out->push_back(Value::Date(static_cast<int32_t>(days)));
        break;
      }
      default:
        return Status::ExecutionError(
            "corrupt spill/heap record: unknown value tag '" +
            std::string(1, tag) + "'");
    }
  }
  return Status::OK();
}

}  // namespace minerule::storage
