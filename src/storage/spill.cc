#include "storage/spill.h"

#include <algorithm>
#include <cstring>

namespace minerule::storage {

namespace {

/// Write-combining threshold and reader chunk size. Small enough that a
/// fan-in-capped merge (kSpillMergeFanIn readers) stays around a megabyte
/// of infrastructure buffers regardless of the data budget.
constexpr size_t kWriteBufferBytes = 256 * 1024;
constexpr size_t kReadChunkBytes = 16 * 1024;

void AppendU32(uint32_t v, std::string* out) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 4);
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

Result<std::unique_ptr<SpillFile>> SpillFile::Create(const std::string& dir) {
  MR_ASSIGN_OR_RETURN(std::unique_ptr<PosixFile> file,
                      PosixFile::CreateTemp(dir));
  return std::unique_ptr<SpillFile>(new SpillFile(std::move(file)));
}

Status SpillFile::FlushBuffer() {
  if (write_buffer_.empty()) return Status::OK();
  MR_RETURN_IF_ERROR(
      file_->WriteAt(tail_, write_buffer_.data(), write_buffer_.size()));
  tail_ += write_buffer_.size();
  write_buffer_.clear();
  return Status::OK();
}

Status SpillFile::Append(std::string_view record) {
  AppendU32(static_cast<uint32_t>(record.size()), &write_buffer_);
  write_buffer_.append(record.data(), record.size());
  ++run_records_;
  if (write_buffer_.size() >= kWriteBufferBytes) return FlushBuffer();
  return Status::OK();
}

Result<SpillRun> SpillFile::FinishRun() {
  MR_RETURN_IF_ERROR(FlushBuffer());
  SpillRun run{run_start_, tail_ - run_start_, run_records_};
  run_start_ = tail_;
  run_records_ = 0;
  return run;
}

Status SpillFile::Reader::Refill(size_t need) {
  const uint64_t run_end = run_.offset + run_.bytes;
  if (pos_ + need > run_end) {
    return Status::ExecutionError(
        "corrupt spill run: record extends past the run extent");
  }
  const size_t want =
      std::max(need, static_cast<size_t>(
                         std::min<uint64_t>(kReadChunkBytes, run_end - pos_)));
  buffer_.resize(want);
  MR_RETURN_IF_ERROR(file_->ReadAt(pos_, buffer_.data(), want));
  buffer_start_ = pos_;
  return Status::OK();
}

Result<bool> SpillFile::Reader::Next(std::string* record) {
  if (file_ == nullptr || read_records_ >= run_.records) return false;
  // Length prefix.
  if (pos_ < buffer_start_ || pos_ + 4 > buffer_start_ + buffer_.size()) {
    MR_RETURN_IF_ERROR(Refill(4));
  }
  const uint32_t len = ReadU32(buffer_.data() + (pos_ - buffer_start_));
  pos_ += 4;
  // Payload.
  if (pos_ < buffer_start_ || pos_ + len > buffer_start_ + buffer_.size()) {
    MR_RETURN_IF_ERROR(Refill(len));
  }
  record->assign(buffer_.data() + (pos_ - buffer_start_), len);
  pos_ += len;
  ++read_records_;
  return true;
}

}  // namespace minerule::storage
