#ifndef MINERULE_POSTPROCESS_POSTPROCESSOR_H_
#define MINERULE_POSTPROCESS_POSTPROCESSOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mining/rule.h"
#include "preprocess/preprocessor.h"

namespace minerule::mr {

/// Where the output landed: three normalized tables as §4.4 prescribes
/// (the set-typed output of the conceptual operator is normalized because
/// SQL3 set constructors "are not standardized and not yet available").
struct PostprocessResult {
  std::string rules_table;   // <out>(BodyId, HeadId[, SUPPORT][, CONFIDENCE])
  std::string bodies_table;  // <out>_Bodies(BodyId, <body schema>)
  std::string heads_table;   // <out>_Heads(HeadId, <head schema>)
  int64_t num_rules = 0;
  std::vector<QueryStat> stats;  // the decoding queries
};

/// The postprocessor of §4.4. The encoded rules arrive as the core
/// operator's in-memory output; this component materializes the normalized
/// OutputBodies/OutputHeads relations and then decodes them into
/// user-readable tables via generated SQL joins against Bset/Hset —
/// exactly the postprocessing query shown at the end of Appendix A.
class Postprocessor {
 public:
  explicit Postprocessor(sql::SqlEngine* engine) : engine_(engine) {}

  Result<PostprocessResult> Run(const MineRuleStatement& stmt,
                                const Translation& translation,
                                const std::vector<mining::MinedRule>& rules,
                                int64_t total_groups,
                                const PreprocessProgram& program);

 private:
  sql::SqlEngine* engine_;
};

/// Renders the mined rules in the paper's Figure 2.b format — one row per
/// rule with "{item, item}" set notation — by joining the three output
/// tables back together. Intended for examples and golden tests.
Result<std::string> RenderRuleTable(sql::SqlEngine* engine,
                                    const MineRuleStatement& stmt);

}  // namespace minerule::mr

#endif  // MINERULE_POSTPROCESS_POSTPROCESSOR_H_
