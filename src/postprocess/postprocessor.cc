#include "postprocess/postprocessor.h"

#include <algorithm>
#include <map>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace minerule::mr {

namespace {

/// Column definitions copied from the source schema for an attr list.
Result<std::string> ColumnDefs(const Schema& schema,
                               const std::vector<std::string>& attrs) {
  std::string out;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ", ";
    const int idx = schema.FindColumn(attrs[i]);
    if (idx < 0) {
      return Status::Internal("attribute vanished from source schema: " +
                              attrs[i]);
    }
    out += attrs[i];
    out += ' ';
    out += DataTypeName(schema.column(idx).type);
  }
  return out;
}

std::string AttrList(const std::vector<std::string>& attrs) {
  return Join(attrs, ", ");
}

}  // namespace

Result<PostprocessResult> Postprocessor::Run(
    const MineRuleStatement& stmt, const Translation& translation,
    const std::vector<mining::MinedRule>& rules, int64_t total_groups,
    const PreprocessProgram& program) {
  PostprocessResult result;
  result.rules_table = stmt.output_table;
  result.bodies_table = stmt.output_table + "_Bodies";
  result.heads_table = stmt.output_table + "_Heads";
  result.num_rules = static_cast<int64_t>(rules.size());

  Catalog* catalog = engine_->catalog();
  for (const std::string& name :
       {result.rules_table, result.bodies_table, result.heads_table,
        std::string("OutputBodies"), std::string("OutputHeads")}) {
    catalog->DropTableIfExists(name);
    catalog->DropViewIfExists(name);
  }

  // --- the core operator's normalized output (§4.4) ----------------------
  // Identifiers for distinct bodies and heads, assigned in rule order.
  std::map<mining::Itemset, int64_t> body_ids;
  std::map<mining::Itemset, int64_t> head_ids;
  for (const mining::MinedRule& rule : rules) {
    body_ids.emplace(rule.body, 0);
    head_ids.emplace(rule.head, 0);
  }
  int64_t next_id = 1;
  for (auto& [items, id] : body_ids) id = next_id++;
  next_id = 1;
  for (auto& [items, id] : head_ids) id = next_id++;

  {
    Schema schema({{"BodyId", DataType::kInteger},
                   {"Bid", DataType::kInteger}});
    MR_ASSIGN_OR_RETURN(std::shared_ptr<Table> bodies,
                        catalog->CreateTable("OutputBodies", schema));
    for (const auto& [items, id] : body_ids) {
      for (mining::ItemId item : items) {
        bodies->AppendUnchecked({Value::Integer(id), Value::Integer(item)});
      }
    }
  }
  {
    Schema schema({{"HeadId", DataType::kInteger},
                   {"Hid", DataType::kInteger}});
    MR_ASSIGN_OR_RETURN(std::shared_ptr<Table> heads,
                        catalog->CreateTable("OutputHeads", schema));
    for (const auto& [items, id] : head_ids) {
      for (mining::ItemId item : items) {
        heads->AppendUnchecked({Value::Integer(id), Value::Integer(item)});
      }
    }
  }
  {
    Schema schema;
    schema.AddColumn({"BodyId", DataType::kInteger});
    schema.AddColumn({"HeadId", DataType::kInteger});
    if (stmt.select_support) {
      schema.AddColumn({"SUPPORT", DataType::kDouble});
    }
    if (stmt.select_confidence) {
      schema.AddColumn({"CONFIDENCE", DataType::kDouble});
    }
    MR_ASSIGN_OR_RETURN(std::shared_ptr<Table> out,
                        catalog->CreateTable(result.rules_table, schema));
    for (const mining::MinedRule& rule : rules) {
      Row row{Value::Integer(body_ids[rule.body]),
              Value::Integer(head_ids[rule.head])};
      if (stmt.select_support) {
        row.push_back(Value::Double(rule.Support(total_groups)));
      }
      if (stmt.select_confidence) {
        row.push_back(Value::Double(rule.Confidence()));
      }
      out->AppendUnchecked(std::move(row));
    }
  }

  // --- decoding (Appendix A's postprocessing query) -----------------------
  const Schema& source_schema = translation.source_schema;
  MR_ASSIGN_OR_RETURN(const std::string body_defs,
                      ColumnDefs(source_schema, stmt.body_schema));
  MR_ASSIGN_OR_RETURN(const std::string head_defs,
                      ColumnDefs(source_schema, stmt.head_schema));
  const std::string hset = program.hset.empty() ? program.bset : program.hset;
  const std::string hset_key = program.hset.empty() ? "Bid" : "Hid";

  std::vector<std::string> decode_sql = {
      "CREATE TABLE " + result.bodies_table + " (BodyId INTEGER, " +
          body_defs + ")",
      "INSERT INTO " + result.bodies_table + " (SELECT BodyId, " +
          AttrList(stmt.body_schema) + " FROM OutputBodies, " + program.bset +
          " WHERE OutputBodies.Bid = " + program.bset + ".Bid)",
      "CREATE TABLE " + result.heads_table + " (HeadId INTEGER, " +
          head_defs + ")",
      "INSERT INTO " + result.heads_table + " (SELECT HeadId, " +
          AttrList(stmt.head_schema) + " FROM OutputHeads, " + hset +
          " WHERE OutputHeads.Hid = " + hset + "." + hset_key + ")",
  };
  for (size_t i = 0; i < decode_sql.size(); ++i) {
    const std::string& sql = decode_sql[i];
    const std::string id = "POST" + std::to_string(i);
    ScopedSpan span("postprocess." + id, "query");
    Stopwatch watch;
    MR_ASSIGN_OR_RETURN(sql::QueryResult query_result, engine_->Execute(sql));
    result.stats.push_back({id, sql, watch.ElapsedMicros(),
                            query_result.affected_rows,
                            std::move(query_result.profile)});
  }
  return result;
}

Result<std::string> RenderRuleTable(sql::SqlEngine* engine,
                                    const MineRuleStatement& stmt) {
  Catalog* catalog = engine->catalog();
  MR_ASSIGN_OR_RETURN(std::shared_ptr<Table> rules,
                      catalog->GetTable(stmt.output_table));
  MR_ASSIGN_OR_RETURN(std::shared_ptr<Table> bodies,
                      catalog->GetTable(stmt.output_table + "_Bodies"));
  MR_ASSIGN_OR_RETURN(std::shared_ptr<Table> heads,
                      catalog->GetTable(stmt.output_table + "_Heads"));

  // Render each body/head id as "{v, v, ...}"; multi-attribute schemas
  // render each item as "(a|b)".
  auto build_sets = [](const Table& table) {
    std::map<int64_t, std::vector<std::string>> sets;
    for (const Row& row : table.rows()) {
      std::string item;
      for (size_t c = 1; c < row.size(); ++c) {
        if (c > 1) item += "|";
        item += row[c].ToString();
      }
      if (table.schema().num_columns() > 2) item = "(" + item + ")";
      sets[row[0].AsInteger()].push_back(std::move(item));
    }
    std::map<int64_t, std::string> rendered;
    for (auto& [id, items] : sets) {
      std::sort(items.begin(), items.end());
      rendered[id] = "{" + Join(items, ", ") + "}";
    }
    return rendered;
  };
  std::map<int64_t, std::string> body_sets = build_sets(*bodies);
  std::map<int64_t, std::string> head_sets = build_sets(*heads);

  Schema display_schema;
  display_schema.AddColumn({"BODY", DataType::kString});
  display_schema.AddColumn({"HEAD", DataType::kString});
  if (stmt.select_support) {
    display_schema.AddColumn({"SUPPORT", DataType::kDouble});
  }
  if (stmt.select_confidence) {
    display_schema.AddColumn({"CONFIDENCE", DataType::kDouble});
  }
  Table display(stmt.output_table, display_schema);
  for (const Row& row : rules->rows()) {
    Row out{Value::String(body_sets[row[0].AsInteger()]),
            Value::String(head_sets[row[1].AsInteger()])};
    for (size_t c = 2; c < row.size(); ++c) out.push_back(row[c]);
    display.AppendUnchecked(std::move(out));
  }
  return display.ToDisplayString(1000);
}

}  // namespace minerule::mr
