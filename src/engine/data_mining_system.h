#ifndef MINERULE_ENGINE_DATA_MINING_SYSTEM_H_
#define MINERULE_ENGINE_DATA_MINING_SYSTEM_H_

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/trace.h"
#include "minerule/parser.h"
#include "minerule/translator.h"
#include "mining/core_operator.h"
#include "postprocess/postprocessor.h"
#include "preprocess/preprocessor.h"
#include "sql/engine.h"

namespace minerule::mr {

/// Knobs for one MINE RULE execution.
struct MiningOptions {
  /// Which pool member the simple core uses (§3: algorithm
  /// interoperability). The default, kAuto, resolves a member from the
  /// encoded source's shape (DESIGN.md §14); naming a member pins it. The
  /// general core has a single implementation. Every member returns the
  /// same rules, so this only affects speed.
  mining::SimpleAlgorithm algorithm = mining::SimpleAlgorithm::kAuto;
  mining::SimpleMinerOptions simple_options;

  /// Worker threads for the core operator, forwarded translator -> core
  /// operator -> miners (overrides simple_options.num_threads). <= 0 means
  /// hardware concurrency; 1 preserves the serial execution exactly. The
  /// mined rules are bit-identical at every setting.
  int num_threads = 0;

  /// Columnar-batch execution for the generated SQL (DESIGN.md §12). The
  /// mined rules are bit-identical either way; only the SQL engine's
  /// execution strategy changes.
  bool vectorized_sql = false;

  /// Cost-based planning for the generated SQL (DESIGN.md §14): join
  /// reordering, build-side choice, tiny-input vectorized fallback and
  /// spill fan-out sizing from catalog statistics plus observed-cardinality
  /// feedback. The mined rules are bit-identical either way (the fuzz
  /// oracle's cost-based route pins it).
  bool cost_based_sql = false;

  /// Memory budget in bytes for the SQL engine's operator working sets
  /// (DESIGN.md §13): >= 0 makes the buffering operators spill to disk past
  /// the budget (0 spills everything), < 0 disables the budget. The mined
  /// rules are bit-identical at every setting. kMemoryLimitInherit (the
  /// default) leaves the engine's own setting alone — which the engine
  /// seeds from the MINERULE_MEMORY_LIMIT environment variable — so the
  /// option only overrides when explicitly set.
  static constexpr int64_t kMemoryLimitInherit =
      std::numeric_limits<int64_t>::min();
  int64_t memory_limit = kMemoryLimitInherit;

  /// §3: "the same preprocessing could be in common to the execution of
  /// several data mining queries, thus saving its cost". When true, a
  /// statement whose encoding-relevant clauses (and support threshold)
  /// match the previous run reuses the encoded tables. Source-table DML is
  /// detected automatically: each table's modification epoch is part of the
  /// cache key, so a changed source forces fresh preprocessing.
  bool reuse_preprocessing = false;

  /// Keep the encoded tables in the catalog after the run (useful for
  /// inspection and for preprocessing reuse); they are overwritten by the
  /// next run regardless.
  bool keep_encoded_tables = true;
};

/// Shared-thread-pool utilization attributed to one run (snapshot delta
/// around the core phase). Pool-side only: ParallelFor chunks executed by
/// the calling thread are not counted.
struct PoolUsage {
  int workers = 0;
  int64_t tasks_run = 0;
  int64_t busy_micros = 0;
  std::vector<int64_t> per_worker_busy_micros;
};

/// Per-run report: classification, phase timings (the Figure 3 process
/// flow), per-query preprocessing stats (Figure 4), core counters, pool
/// utilization and the phase/counter trace.
struct MiningRunStats {
  Directives directives;
  int64_t total_groups = 0;
  int64_t min_group_count = 0;
  bool preprocessing_reused = false;

  /// Id of this run's row in the mr_runs system table (DESIGN.md §11);
  /// assigned by the process-wide ObservabilityRegistry, 1-based.
  int64_t run_id = 0;

  /// Estimated peak working-set bytes: coded-table cache plus the largest
  /// per-query operator buffer total (join builds, aggregate tables, sort
  /// buffers) across the generated queries.
  int64_t peak_bytes = 0;

  /// Resolved worker-thread count the SQL engine ran with (DESIGN.md §9):
  /// MiningOptions::num_threads with <= 0 resolved to the hardware
  /// concurrency. The pre/postprocessing queries used morsel-driven
  /// parallelism at this width; 1 is the exact serial path.
  int engine_threads = 1;

  double translate_seconds = 0;
  double preprocess_seconds = 0;
  double core_seconds = 0;
  double postprocess_seconds = 0;
  double TotalSeconds() const {
    return translate_seconds + preprocess_seconds + core_seconds +
           postprocess_seconds;
  }

  std::vector<QueryStat> preprocess_queries;
  std::vector<QueryStat> postprocess_queries;
  mining::CoreStats core;

  PoolUsage pool;
  TraceRecorder trace;

  PostprocessResult output;

  /// Serializes the whole report (phases, per-query operator profiles,
  /// per-pass mining counters, pool utilization, trace events) as one JSON
  /// object — the machine-readable shape the benches emit. Schema is
  /// documented in DESIGN.md §8.
  std::string ToJson() const;
};

/// The kernel of the tightly-coupled architecture (Figure 3a): translator,
/// preprocessor, core operator and postprocessor around one SQL server.
/// Everything flows through the catalog: sources in, encoded tables in the
/// middle, rule tables out — the integration property the paper argues for.
class DataMiningSystem {
 public:
  explicit DataMiningSystem(Catalog* catalog)
      : catalog_(catalog), sql_engine_(catalog) {
    // Per-operator row counts for every generated query (cheap; timing
    // stays off unless EXPLAIN ANALYZE asks for it).
    sql_engine_.set_collect_operator_stats(true);
  }

  DataMiningSystem(const DataMiningSystem&) = delete;
  DataMiningSystem& operator=(const DataMiningSystem&) = delete;

  /// Executes a MINE RULE statement end to end. On success the output
  /// tables <out>, <out>_Bodies and <out>_Heads exist in the catalog.
  /// Every execution — successful or not — is appended to the mr_runs
  /// system table (DESIGN.md §11).
  Result<MiningRunStats> ExecuteMineRule(std::string_view text,
                                         const MiningOptions& options = {});

  /// Executes an already-parsed statement.
  Result<MiningRunStats> ExecuteStatement(const MineRuleStatement& stmt,
                                          const MiningOptions& options = {});

  /// Plain SQL passthrough to the embedded server (loading data, querying
  /// rule tables, joining rules with source data — the tight coupling).
  Result<sql::QueryResult> ExecuteSql(std::string_view sql) {
    return sql_engine_.Execute(sql);
  }

  /// Renders a previously mined output table in Figure 2.b notation.
  Result<std::string> RenderRules(const std::string& output_table);

  /// Drops the preprocessing cache. Source-table DML is detected via table
  /// epochs in the cache key; this remains for explicit resets.
  void InvalidateCache() { cache_key_.reset(); }

  /// Per-session attribution stamped onto every mr_runs row this system
  /// records (DESIGN.md §15). The server session layer sets it before each
  /// statement; library callers leave the default (session 0, no queue).
  struct RunAttribution {
    int64_t session_id = 0;
    int64_t queue_wait_micros = 0;
    std::string admission;  // "", "immediate" or "queued"
  };
  void set_run_attribution(RunAttribution attribution) {
    attribution_ = std::move(attribution);
  }

  sql::SqlEngine* sql_engine() { return &sql_engine_; }
  Catalog* catalog() { return catalog_; }

 private:
  /// Cache key: the statement with everything that does not influence the
  /// generated preprocessing program masked out, plus the modification
  /// epochs of every source table (resolved through views) so that DML on a
  /// source invalidates the cache automatically.
  std::string PreprocessCacheKey(const MineRuleStatement& stmt) const;

  Result<mining::CodedSourceData> FetchEncodedData(
      const PreprocessProgram& program, const Directives& directives);

  /// The pipeline proper; ExecuteStatement wraps it to record the run into
  /// the observability registry on both the success and the error path.
  Result<MiningRunStats> ExecuteStatementImpl(const MineRuleStatement& stmt,
                                              const MiningOptions& options);

  Catalog* catalog_;
  sql::SqlEngine sql_engine_;
  RunAttribution attribution_;

  std::optional<std::string> cache_key_;
  std::optional<PreprocessResult> cached_preprocess_;

  /// What RenderRules needs to know about past runs, by output table.
  struct RenderInfo {
    bool select_support = false;
    bool select_confidence = false;
  };
  std::map<std::string, RenderInfo> executed_;
};

}  // namespace minerule::mr

#endif  // MINERULE_ENGINE_DATA_MINING_SYSTEM_H_
