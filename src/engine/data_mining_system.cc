#include "engine/data_mining_system.h"

#include "common/stopwatch.h"
#include "common/string_util.h"

namespace minerule::mr {

namespace {

Result<int64_t> IntAt(const Row& row, size_t index) {
  if (index >= row.size() || row[index].type() != DataType::kInteger) {
    return Status::Internal("encoded table column " + std::to_string(index) +
                            " is not an integer");
  }
  return row[index].AsInteger();
}

}  // namespace

std::string DataMiningSystem::PreprocessCacheKey(
    const MineRuleStatement& stmt) {
  // Only the clauses that reach the generated SQL matter: body/head
  // schemas, FROM / source condition, grouping, clustering, the mining
  // condition, and the support threshold (it sets :mingroups). The
  // cardinalities, the SUPPORT/CONFIDENCE projection flags, the confidence
  // threshold and the output table name only affect later phases.
  std::string key;
  key += "B:" + ToLower(Join(stmt.body_schema, ",")) + ";";
  key += "H:" + ToLower(Join(stmt.head_schema, ",")) + ";";
  key += "M:" + (stmt.mining_cond ? stmt.mining_cond->ToSql() : "") + ";";
  key += "F:";
  for (const sql::TableRef& ref : stmt.from) {
    key += ToLower(ref.name) + " " + ToLower(ref.alias) + ",";
  }
  key += ";W:" + (stmt.source_cond ? stmt.source_cond->ToSql() : "") + ";";
  key += "G:" + ToLower(Join(stmt.group_attrs, ",")) + ";";
  key += "GC:" + (stmt.group_cond ? stmt.group_cond->ToSql() : "") + ";";
  key += "C:" + ToLower(Join(stmt.cluster_attrs, ",")) + ";";
  key += "CC:" + (stmt.cluster_cond ? stmt.cluster_cond->ToSql() : "") + ";";
  key += "S:" + std::to_string(stmt.min_support);
  return key;
}

Result<mining::CodedSourceData> DataMiningSystem::FetchEncodedData(
    const PreprocessProgram& program, const Directives& directives) {
  mining::CodedSourceData data;

  if (!program.coded_source.empty()) {
    MR_ASSIGN_OR_RETURN(
        sql::QueryResult coded,
        sql_engine_.Execute("SELECT Gid, Bid FROM " + program.coded_source));
    data.simple_pairs.reserve(coded.rows.size());
    for (const Row& row : coded.rows) {
      MR_ASSIGN_OR_RETURN(int64_t gid, IntAt(row, 0));
      MR_ASSIGN_OR_RETURN(int64_t bid, IntAt(row, 1));
      data.simple_pairs.emplace_back(static_cast<mining::Gid>(gid),
                                     static_cast<mining::ItemId>(bid));
    }
    return data;
  }

  auto fetch_role = [&](const std::string& table, const char* item_col,
                        std::vector<mining::CodedSourceData::RoleRow>* out)
      -> Status {
    const std::string cols = directives.C
                                 ? "Gid, Cid, " + std::string(item_col)
                                 : "Gid, " + std::string(item_col);
    MR_ASSIGN_OR_RETURN(sql::QueryResult rows, sql_engine_.Execute(
                            "SELECT " + cols + " FROM " + table));
    out->reserve(rows.rows.size());
    for (const Row& row : rows.rows) {
      MR_ASSIGN_OR_RETURN(int64_t gid, IntAt(row, 0));
      int64_t cid = mining::kNoCluster;
      size_t item_index = 1;
      if (directives.C) {
        MR_ASSIGN_OR_RETURN(cid, IntAt(row, 1));
        item_index = 2;
      }
      MR_ASSIGN_OR_RETURN(int64_t item, IntAt(row, item_index));
      out->push_back({static_cast<mining::Gid>(gid),
                      static_cast<mining::Cid>(cid),
                      static_cast<mining::ItemId>(item)});
    }
    return Status::OK();
  };

  MR_RETURN_IF_ERROR(
      fetch_role(program.coded_source_b, "Bid", &data.body_rows));
  if (!program.coded_source_h.empty()) {
    MR_RETURN_IF_ERROR(
        fetch_role(program.coded_source_h, "Hid", &data.head_rows));
  }

  if (!program.cluster_couples.empty()) {
    MR_ASSIGN_OR_RETURN(sql::QueryResult couples,
                        sql_engine_.Execute("SELECT Gid, BCid, HCid FROM " +
                                            program.cluster_couples));
    for (const Row& row : couples.rows) {
      MR_ASSIGN_OR_RETURN(int64_t gid, IntAt(row, 0));
      MR_ASSIGN_OR_RETURN(int64_t bcid, IntAt(row, 1));
      MR_ASSIGN_OR_RETURN(int64_t hcid, IntAt(row, 2));
      data.cluster_couples.emplace_back(static_cast<mining::Gid>(gid),
                                        static_cast<mining::Cid>(bcid),
                                        static_cast<mining::Cid>(hcid));
    }
  }

  if (!program.input_rules.empty()) {
    const std::string cols =
        directives.C ? "Gid, BCid, HCid, Bid, Hid" : "Gid, Bid, Hid";
    MR_ASSIGN_OR_RETURN(
        sql::QueryResult rules,
        sql_engine_.Execute("SELECT " + cols + " FROM " +
                            program.input_rules));
    for (const Row& row : rules.rows) {
      mining::GeneralInput::ElementaryOccurrence occ;
      MR_ASSIGN_OR_RETURN(int64_t gid, IntAt(row, 0));
      occ.gid = static_cast<mining::Gid>(gid);
      size_t next = 1;
      if (directives.C) {
        MR_ASSIGN_OR_RETURN(int64_t bcid, IntAt(row, next++));
        MR_ASSIGN_OR_RETURN(int64_t hcid, IntAt(row, next++));
        occ.bcid = static_cast<mining::Cid>(bcid);
        occ.hcid = static_cast<mining::Cid>(hcid);
      } else {
        occ.bcid = mining::kNoCluster;
        occ.hcid = mining::kNoCluster;
      }
      MR_ASSIGN_OR_RETURN(int64_t bid, IntAt(row, next++));
      MR_ASSIGN_OR_RETURN(int64_t hid, IntAt(row, next++));
      occ.bid = static_cast<mining::ItemId>(bid);
      occ.hid = static_cast<mining::ItemId>(hid);
      data.input_rules.push_back(occ);
    }
  }
  return data;
}

Result<MiningRunStats> DataMiningSystem::ExecuteMineRule(
    std::string_view text, const MiningOptions& options) {
  Stopwatch watch;
  MR_ASSIGN_OR_RETURN(MineRuleStatement stmt, ParseMineRule(text));
  return ExecuteStatement(stmt, options);
}

Result<MiningRunStats> DataMiningSystem::ExecuteStatement(
    const MineRuleStatement& stmt, const MiningOptions& options) {
  MiningRunStats stats;

  // --- translator --------------------------------------------------------
  Stopwatch phase;
  Translator translator(
      catalog_, [this](const std::string& view) -> Result<Schema> {
        // Resolve a view's output schema by planning (not executing) a
        // zero-row probe through the SQL engine.
        MR_ASSIGN_OR_RETURN(sql::QueryResult probe,
                            sql_engine_.Execute("SELECT * FROM " + view +
                                                " LIMIT 0"));
        return probe.schema;
      });
  MR_ASSIGN_OR_RETURN(Translation translation, translator.Translate(stmt));
  stats.directives = translation.directives;
  stats.translate_seconds = phase.ElapsedSeconds();

  // --- preprocessor ------------------------------------------------------
  phase.Restart();
  const std::string cache_key = PreprocessCacheKey(stmt);
  PreprocessResult* preprocess = nullptr;
  if (options.reuse_preprocessing && cache_key_ == cache_key &&
      cached_preprocess_.has_value()) {
    preprocess = &*cached_preprocess_;
    stats.preprocessing_reused = true;
  } else {
    Preprocessor preprocessor(&sql_engine_);
    MR_ASSIGN_OR_RETURN(PreprocessResult fresh,
                        preprocessor.Run(stmt, translation));
    cached_preprocess_ = std::move(fresh);
    cache_key_ = cache_key;
    preprocess = &*cached_preprocess_;
  }
  stats.total_groups = preprocess->total_groups;
  stats.min_group_count = preprocess->min_group_count;
  stats.preprocess_queries = preprocess->stats;
  stats.preprocess_seconds = phase.ElapsedSeconds();

  // --- core operator -----------------------------------------------------
  phase.Restart();
  mining::CoreDirectives core_directives;
  core_directives.general = !translation.directives.IsSimpleClass();
  core_directives.has_clusters = translation.directives.C;
  core_directives.distinct_head = translation.directives.H;
  core_directives.has_input_rules = translation.directives.M;
  core_directives.has_cluster_couples = translation.directives.K;

  MR_ASSIGN_OR_RETURN(
      mining::CodedSourceData data,
      FetchEncodedData(preprocess->program, translation.directives));
  data.total_groups = preprocess->total_groups;

  mining::CoreOptions core_options;
  core_options.algorithm = options.algorithm;
  core_options.simple_options = options.simple_options;
  core_options.num_threads = options.num_threads;
  MR_ASSIGN_OR_RETURN(
      std::vector<mining::MinedRule> rules,
      RunCoreOperator(data, core_directives, stmt.min_support,
                      stmt.min_confidence, stmt.body_card, stmt.head_card,
                      core_options, &stats.core));
  stats.core_seconds = phase.ElapsedSeconds();

  // --- postprocessor -----------------------------------------------------
  phase.Restart();
  Postprocessor postprocessor(&sql_engine_);
  MR_ASSIGN_OR_RETURN(
      stats.output,
      postprocessor.Run(stmt, translation, rules, preprocess->total_groups,
                        preprocess->program));
  stats.postprocess_queries = stats.output.stats;
  stats.postprocess_seconds = phase.ElapsedSeconds();

  executed_[ToLower(stmt.output_table)] =
      RenderInfo{stmt.select_support, stmt.select_confidence};

  if (!options.keep_encoded_tables) {
    // Rerun the idempotent drops; this also invalidates the cache.
    for (const GeneratedQuery& q : preprocess->program.drops) {
      MR_RETURN_IF_ERROR(sql_engine_.Execute(q.sql).status());
    }
    InvalidateCache();
    cached_preprocess_.reset();
  }
  return stats;
}

Result<std::string> DataMiningSystem::RenderRules(
    const std::string& output_table) {
  auto it = executed_.find(ToLower(output_table));
  if (it == executed_.end()) {
    return Status::NotFound("no MINE RULE run produced table " + output_table);
  }
  MineRuleStatement stmt;
  stmt.output_table = output_table;
  stmt.select_support = it->second.select_support;
  stmt.select_confidence = it->second.select_confidence;
  return RenderRuleTable(&sql_engine_, stmt);
}

}  // namespace minerule::mr
