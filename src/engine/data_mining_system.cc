#include "engine/data_mining_system.h"

#include <algorithm>
#include <optional>

#include "common/json.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "sql/parser.h"
#include "sql/system_tables.h"

namespace minerule::mr {

namespace {

Result<int64_t> IntAt(const Row& row, size_t index) {
  if (index >= row.size() || row[index].type() != DataType::kInteger) {
    return Status::Internal("encoded table column " + std::to_string(index) +
                            " is not an integer");
  }
  return row[index].AsInteger();
}

/// Appends "name@epoch" entries for every base table reachable from
/// `relation`, expanding views (and their subqueries) up to `depth` levels.
/// Unresolvable names contribute epoch 0, which still changes the key when
/// the object later appears.
void AppendSourceEpochs(const Catalog& catalog, const std::string& relation,
                        int depth, std::string* key) {
  if (depth <= 0) return;
  if (catalog.HasView(relation)) {
    auto view = catalog.GetView(relation);
    if (!view.ok()) return;
    *key += "view:" + ToLower(relation) + ",";
    auto select = sql::ParseSelectSql(view->select_sql);
    if (!select.ok()) return;
    // Walk the view's FROM list, including nested subqueries.
    std::vector<const sql::SelectStmt*> pending{select->get()};
    while (!pending.empty()) {
      const sql::SelectStmt* stmt = pending.back();
      pending.pop_back();
      for (const sql::TableRef& ref : stmt->from) {
        if (ref.kind == sql::TableRef::Kind::kSubquery) {
          if (ref.subquery) pending.push_back(ref.subquery.get());
        } else {
          AppendSourceEpochs(catalog, ref.name, depth - 1, key);
        }
      }
    }
    return;
  }
  *key += ToLower(relation) + "@" +
          std::to_string(catalog.TableVersion(relation)) + ",";
}

/// Sums the est_bytes operator counters of each query and returns the
/// largest per-query total — the queries run sequentially, so their buffer
/// peaks do not stack.
int64_t MaxQueryOperatorBytes(const std::vector<QueryStat>& stats) {
  int64_t max_bytes = 0;
  for (const QueryStat& q : stats) {
    int64_t total = 0;
    for (const sql::OperatorProfile& op : q.operators) {
      for (const auto& [key, value] : op.counters) {
        if (key == "est_bytes") total += value;
      }
    }
    max_bytes = std::max(max_bytes, total);
  }
  return max_bytes;
}

/// Converts one phase's QueryStats into mr_query_profile records.
void AppendQueryRecords(const std::vector<QueryStat>& stats,
                        const char* phase,
                        std::vector<sql::QueryProfileRecord>* out) {
  for (const QueryStat& q : stats) {
    sql::QueryProfileRecord record;
    record.query_id = q.id;
    record.phase = phase;
    record.sql = q.sql;
    record.rows = q.rows;
    record.micros = q.micros;
    record.operators = q.operators;
    out->push_back(std::move(record));
  }
}

}  // namespace

std::string DataMiningSystem::PreprocessCacheKey(
    const MineRuleStatement& stmt) const {
  // Only the clauses that reach the generated SQL matter: body/head
  // schemas, FROM / source condition, grouping, clustering, the mining
  // condition, and the support threshold (it sets :mingroups). The
  // cardinalities, the SUPPORT/CONFIDENCE projection flags, the confidence
  // threshold and the output table name only affect later phases.
  std::string key;
  key += "B:" + ToLower(Join(stmt.body_schema, ",")) + ";";
  key += "H:" + ToLower(Join(stmt.head_schema, ",")) + ";";
  key += "M:" + (stmt.mining_cond ? stmt.mining_cond->ToSql() : "") + ";";
  key += "F:";
  for (const sql::TableRef& ref : stmt.from) {
    key += ToLower(ref.name) + " " + ToLower(ref.alias) + ",";
  }
  key += ";W:" + (stmt.source_cond ? stmt.source_cond->ToSql() : "") + ";";
  key += "G:" + ToLower(Join(stmt.group_attrs, ",")) + ";";
  key += "GC:" + (stmt.group_cond ? stmt.group_cond->ToSql() : "") + ";";
  key += "C:" + ToLower(Join(stmt.cluster_attrs, ",")) + ";";
  key += "CC:" + (stmt.cluster_cond ? stmt.cluster_cond->ToSql() : "") + ";";
  key += "S:" + std::to_string(stmt.min_support);
  // Source data epochs: any DML on (or drop/recreate of) a source table
  // changes its version and thus the key, so a stale cache entry can never
  // be served. Views are expanded to the base tables they read.
  key += ";V:";
  for (const sql::TableRef& ref : stmt.from) {
    AppendSourceEpochs(*catalog_, ref.name, /*depth=*/8, &key);
  }
  return key;
}

namespace {

void WriteIntArray(JsonWriter* w, const std::vector<int64_t>& values) {
  w->BeginArray();
  for (int64_t v : values) w->Int(v);
  w->EndArray();
}

void WriteQueryStats(JsonWriter* w, const std::vector<QueryStat>& stats) {
  w->BeginArray();
  for (const QueryStat& q : stats) {
    w->BeginObject();
    w->Key("id").String(q.id);
    w->Key("sql").String(q.sql);
    w->Key("micros").Int(q.micros);
    w->Key("rows").Int(q.rows);
    w->Key("operators").BeginArray();
    for (const sql::OperatorProfile& op : q.operators) {
      w->BeginObject();
      w->Key("name").String(op.name);
      w->Key("detail").String(op.detail);
      w->Key("depth").Int(op.depth);
      w->Key("rows").Int(op.rows);
      w->Key("micros").Int(op.micros);
      w->Key("counters").BeginObject();
      for (const auto& [key, value] : op.counters) w->Key(key).Int(value);
      w->EndObject();
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
}

}  // namespace

std::string MiningRunStats::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("directives").String(directives.ToString());
  w.Key("run_id").Int(run_id);
  w.Key("total_groups").Int(total_groups);
  w.Key("min_group_count").Int(min_group_count);
  w.Key("preprocessing_reused").Bool(preprocessing_reused);
  w.Key("engine_threads").Int(engine_threads);
  w.Key("peak_bytes").Int(peak_bytes);

  w.Key("phases").BeginObject();
  w.Key("translate_seconds").Double(translate_seconds);
  w.Key("preprocess_seconds").Double(preprocess_seconds);
  w.Key("core_seconds").Double(core_seconds);
  w.Key("postprocess_seconds").Double(postprocess_seconds);
  w.Key("total_seconds").Double(TotalSeconds());
  w.EndObject();

  w.Key("preprocess_queries");
  WriteQueryStats(&w, preprocess_queries);
  w.Key("postprocess_queries");
  WriteQueryStats(&w, postprocess_queries);

  w.Key("core").BeginObject();
  w.Key("used_general").Bool(core.used_general);
  w.Key("algorithm").String(core.algorithm);
  w.Key("rules_found").Int(core.rules_found);
  if (core.used_general) {
    w.Key("general").BeginObject();
    w.Key("elementary_candidates").Int(core.general.elementary_candidates);
    w.Key("elementary_rules").Int(core.general.elementary_rules);
    w.Key("body_supports_computed").Int(core.general.body_supports_computed);
    w.Key("cells_evaluated").Int(core.general.cells_evaluated);
    w.Key("sets").BeginArray();
    for (const auto& set : core.general.sets) {
      w.BeginObject();
      w.Key("body_size").Int(set.body_size);
      w.Key("head_size").Int(set.head_size);
      w.Key("candidates").Int(set.candidates);
      w.Key("kept").Int(set.kept);
      w.Key("from_body_extension").Bool(set.from_body_extension);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  } else {
    w.Key("simple").BeginObject();
    w.Key("passes").Int(core.simple.passes);
    w.Key("candidates_per_level");
    WriteIntArray(&w, core.simple.candidates_per_level);
    w.Key("large_per_level");
    WriteIntArray(&w, core.simple.large_per_level);
    w.Key("sampling_needed_full_pass")
        .Bool(core.simple.sampling_needed_full_pass);
    w.Key("dhp_unfiltered_pairs").Int(core.simple.dhp_unfiltered_pairs);
    w.Key("dhp_filtered_pairs").Int(core.simple.dhp_filtered_pairs);
    w.Key("partition_slice_sizes");
    WriteIntArray(&w, core.simple.partition_slice_sizes);
    w.EndObject();
  }
  w.EndObject();

  w.Key("thread_pool").BeginObject();
  w.Key("workers").Int(pool.workers);
  w.Key("tasks_run").Int(pool.tasks_run);
  w.Key("busy_micros").Int(pool.busy_micros);
  w.Key("per_worker_busy_micros");
  WriteIntArray(&w, pool.per_worker_busy_micros);
  w.EndObject();

  w.Key("trace");
  trace.AppendJson(&w);

  w.EndObject();
  return w.str();
}

Result<mining::CodedSourceData> DataMiningSystem::FetchEncodedData(
    const PreprocessProgram& program, const Directives& directives) {
  mining::CodedSourceData data;

  if (!program.coded_source.empty()) {
    MR_ASSIGN_OR_RETURN(
        sql::QueryResult coded,
        sql_engine_.Execute("SELECT Gid, Bid FROM " + program.coded_source));
    data.simple_pairs.reserve(coded.rows.size());
    for (const Row& row : coded.rows) {
      MR_ASSIGN_OR_RETURN(int64_t gid, IntAt(row, 0));
      MR_ASSIGN_OR_RETURN(int64_t bid, IntAt(row, 1));
      data.simple_pairs.emplace_back(static_cast<mining::Gid>(gid),
                                     static_cast<mining::ItemId>(bid));
    }
    return data;
  }

  auto fetch_role = [&](const std::string& table, const char* item_col,
                        std::vector<mining::CodedSourceData::RoleRow>* out)
      -> Status {
    const std::string cols = directives.C
                                 ? "Gid, Cid, " + std::string(item_col)
                                 : "Gid, " + std::string(item_col);
    MR_ASSIGN_OR_RETURN(sql::QueryResult rows, sql_engine_.Execute(
                            "SELECT " + cols + " FROM " + table));
    out->reserve(rows.rows.size());
    for (const Row& row : rows.rows) {
      MR_ASSIGN_OR_RETURN(int64_t gid, IntAt(row, 0));
      int64_t cid = mining::kNoCluster;
      size_t item_index = 1;
      if (directives.C) {
        MR_ASSIGN_OR_RETURN(cid, IntAt(row, 1));
        item_index = 2;
      }
      MR_ASSIGN_OR_RETURN(int64_t item, IntAt(row, item_index));
      out->push_back({static_cast<mining::Gid>(gid),
                      static_cast<mining::Cid>(cid),
                      static_cast<mining::ItemId>(item)});
    }
    return Status::OK();
  };

  MR_RETURN_IF_ERROR(
      fetch_role(program.coded_source_b, "Bid", &data.body_rows));
  if (!program.coded_source_h.empty()) {
    MR_RETURN_IF_ERROR(
        fetch_role(program.coded_source_h, "Hid", &data.head_rows));
  }

  if (!program.cluster_couples.empty()) {
    MR_ASSIGN_OR_RETURN(sql::QueryResult couples,
                        sql_engine_.Execute("SELECT Gid, BCid, HCid FROM " +
                                            program.cluster_couples));
    for (const Row& row : couples.rows) {
      MR_ASSIGN_OR_RETURN(int64_t gid, IntAt(row, 0));
      MR_ASSIGN_OR_RETURN(int64_t bcid, IntAt(row, 1));
      MR_ASSIGN_OR_RETURN(int64_t hcid, IntAt(row, 2));
      data.cluster_couples.emplace_back(static_cast<mining::Gid>(gid),
                                        static_cast<mining::Cid>(bcid),
                                        static_cast<mining::Cid>(hcid));
    }
  }

  if (!program.input_rules.empty()) {
    const std::string cols =
        directives.C ? "Gid, BCid, HCid, Bid, Hid" : "Gid, Bid, Hid";
    MR_ASSIGN_OR_RETURN(
        sql::QueryResult rules,
        sql_engine_.Execute("SELECT " + cols + " FROM " +
                            program.input_rules));
    for (const Row& row : rules.rows) {
      mining::GeneralInput::ElementaryOccurrence occ;
      MR_ASSIGN_OR_RETURN(int64_t gid, IntAt(row, 0));
      occ.gid = static_cast<mining::Gid>(gid);
      size_t next = 1;
      if (directives.C) {
        MR_ASSIGN_OR_RETURN(int64_t bcid, IntAt(row, next++));
        MR_ASSIGN_OR_RETURN(int64_t hcid, IntAt(row, next++));
        occ.bcid = static_cast<mining::Cid>(bcid);
        occ.hcid = static_cast<mining::Cid>(hcid);
      } else {
        occ.bcid = mining::kNoCluster;
        occ.hcid = mining::kNoCluster;
      }
      MR_ASSIGN_OR_RETURN(int64_t bid, IntAt(row, next++));
      MR_ASSIGN_OR_RETURN(int64_t hid, IntAt(row, next++));
      occ.bid = static_cast<mining::ItemId>(bid);
      occ.hid = static_cast<mining::ItemId>(hid);
      data.input_rules.push_back(occ);
    }
  }
  return data;
}

Result<MiningRunStats> DataMiningSystem::ExecuteMineRule(
    std::string_view text, const MiningOptions& options) {
  Stopwatch watch;
  MR_ASSIGN_OR_RETURN(MineRuleStatement stmt, ParseMineRule(text));
  return ExecuteStatement(stmt, options);
}

Result<MiningRunStats> DataMiningSystem::ExecuteStatement(
    const MineRuleStatement& stmt, const MiningOptions& options) {
  // The wrapper records every execution — success or failure — as one row
  // of the mr_runs system table and feeds the engine.* metrics, so the
  // telemetry is queryable through the same SQL engine that ran the
  // pipeline (DESIGN.md §11).
  Stopwatch total;
  Result<MiningRunStats> result = ExecuteStatementImpl(stmt, options);
  const int64_t total_micros = total.ElapsedMicros();

  sql::RunRecord run;
  run.statement = stmt.ToString();
  run.threads = ResolveThreadCount(options.num_threads);
  run.total_micros = total_micros;
  run.session_id = attribution_.session_id;
  run.queue_wait_micros = attribution_.queue_wait_micros;
  run.admission = attribution_.admission;
  if (result.ok()) {
    MiningRunStats& stats = *result;
    run.rules = stats.core.rules_found;
    run.peak_bytes = stats.peak_bytes;
    run.reused_preprocess = stats.preprocessing_reused;
    AppendQueryRecords(stats.preprocess_queries, "preprocess", &run.queries);
    AppendQueryRecords(stats.postprocess_queries, "postprocess", &run.queries);
  } else {
    run.status = result.status().ToString();
  }

  static Counter* runs = GlobalMetrics().GetCounter("engine.runs");
  static Counter* failed = GlobalMetrics().GetCounter("engine.failed_runs");
  static Counter* rules_found =
      GlobalMetrics().GetCounter("engine.rules_found");
  static Histogram* run_micros = GlobalMetrics().GetHistogram(
      "engine.run_micros", LatencyBucketsMicros());
  runs->Increment();
  run_micros->Observe(total_micros);
  if (result.ok()) {
    rules_found->Add(result->core.rules_found);
    GlobalMetrics().GetGauge("engine.peak_bytes")->UpdateMax(
        result->peak_bytes);
  } else {
    failed->Increment();
  }

  const int64_t run_id = sql::GlobalObservability().RecordRun(std::move(run));
  if (result.ok()) result->run_id = run_id;
  return result;
}

Result<MiningRunStats> DataMiningSystem::ExecuteStatementImpl(
    const MineRuleStatement& stmt, const MiningOptions& options) {
  MiningRunStats stats;

  // Stage spans for the Chrome trace export; each phase below re-emplaces
  // the span, closing the previous stage at that instant. Inert (one
  // relaxed atomic load each) unless --trace-out enabled the tracer.
  GlobalTracer().SetCurrentThreadName("main");
  std::optional<ScopedSpan> stage_span;

  // The SQL phases (preprocessor Q0..Q11, postprocessor) run morsel-parallel
  // at the same width as the core operator; phases are sequential on the one
  // shared pool, so this never oversubscribes.
  sql_engine_.set_num_threads(options.num_threads);
  sql_engine_.set_vectorized(options.vectorized_sql);
  sql_engine_.set_cost_based(options.cost_based_sql);
  if (options.memory_limit != MiningOptions::kMemoryLimitInherit) {
    sql_engine_.set_memory_limit(options.memory_limit);
  }
  stats.engine_threads = ResolveThreadCount(options.num_threads);

  // --- translator --------------------------------------------------------
  stage_span.emplace("translate", "phase");
  Stopwatch phase;
  Translator translator(
      catalog_, [this](const std::string& view) -> Result<Schema> {
        // Resolve a view's output schema by planning (not executing) a
        // zero-row probe through the SQL engine.
        MR_ASSIGN_OR_RETURN(sql::QueryResult probe,
                            sql_engine_.Execute("SELECT * FROM " + view +
                                                " LIMIT 0"));
        return probe.schema;
      });
  MR_ASSIGN_OR_RETURN(Translation translation, translator.Translate(stmt));
  stats.directives = translation.directives;
  stats.translate_seconds = phase.ElapsedSeconds();
  stats.trace.Span("translate", phase.ElapsedMicros());

  // --- preprocessor ------------------------------------------------------
  stage_span.emplace("preprocess", "phase");
  phase.Restart();
  const std::string cache_key = PreprocessCacheKey(stmt);
  PreprocessResult* preprocess = nullptr;
  if (options.reuse_preprocessing && cache_key_ == cache_key &&
      cached_preprocess_.has_value()) {
    preprocess = &*cached_preprocess_;
    stats.preprocessing_reused = true;
  } else {
    Preprocessor preprocessor(&sql_engine_);
    MR_ASSIGN_OR_RETURN(PreprocessResult fresh,
                        preprocessor.Run(stmt, translation));
    cached_preprocess_ = std::move(fresh);
    cache_key_ = cache_key;
    preprocess = &*cached_preprocess_;
  }
  stats.total_groups = preprocess->total_groups;
  stats.min_group_count = preprocess->min_group_count;
  stats.preprocess_queries = preprocess->stats;
  stats.preprocess_seconds = phase.ElapsedSeconds();
  stats.trace.Span("preprocess", phase.ElapsedMicros());
  stats.trace.Counter("preprocess.reused", stats.preprocessing_reused ? 1 : 0);
  stats.trace.Counter("preprocess.total_groups", stats.total_groups);

  // --- core operator -----------------------------------------------------
  stage_span.emplace("core", "phase");
  phase.Restart();
  const ThreadPoolStats pool_before = SharedThreadPool().Stats();
  mining::CoreDirectives core_directives;
  core_directives.general = !translation.directives.IsSimpleClass();
  core_directives.has_clusters = translation.directives.C;
  core_directives.distinct_head = translation.directives.H;
  core_directives.has_input_rules = translation.directives.M;
  core_directives.has_cluster_couples = translation.directives.K;

  MR_ASSIGN_OR_RETURN(
      mining::CodedSourceData data,
      FetchEncodedData(preprocess->program, translation.directives));
  data.total_groups = preprocess->total_groups;

  // Coded-table cache footprint (the in-memory copy handed to the miners).
  const int64_t coded_bytes = static_cast<int64_t>(
      data.simple_pairs.size() *
          sizeof(decltype(data.simple_pairs)::value_type) +
      data.body_rows.size() * sizeof(decltype(data.body_rows)::value_type) +
      data.head_rows.size() * sizeof(decltype(data.head_rows)::value_type) +
      data.cluster_couples.size() *
          sizeof(decltype(data.cluster_couples)::value_type) +
      data.input_rules.size() *
          sizeof(decltype(data.input_rules)::value_type));
  GlobalMetrics().GetGauge("engine.coded_cache_bytes")->UpdateMax(coded_bytes);

  mining::CoreOptions core_options;
  core_options.algorithm = options.algorithm;
  core_options.simple_options = options.simple_options;
  core_options.num_threads = options.num_threads;
  MR_ASSIGN_OR_RETURN(
      std::vector<mining::MinedRule> rules,
      RunCoreOperator(data, core_directives, stmt.min_support,
                      stmt.min_confidence, stmt.body_card, stmt.head_card,
                      core_options, &stats.core));
  stats.core_seconds = phase.ElapsedSeconds();
  stats.trace.Span("core", phase.ElapsedMicros());
  stats.trace.Counter("core.rules_found", stats.core.rules_found);

  // Attribute shared-pool usage to this run's core phase by delta. Other
  // concurrent DataMiningSystem instances would pollute the delta; the
  // usual single-system-per-thread setup makes it exact.
  const ThreadPoolStats pool_after = SharedThreadPool().Stats();
  stats.pool.workers = SharedThreadPool().size();
  stats.pool.tasks_run = pool_after.tasks_run - pool_before.tasks_run;
  stats.pool.busy_micros = pool_after.busy_micros - pool_before.busy_micros;
  stats.pool.per_worker_busy_micros.resize(
      pool_after.per_worker_busy_micros.size());
  for (size_t i = 0; i < pool_after.per_worker_busy_micros.size(); ++i) {
    stats.pool.per_worker_busy_micros[i] =
        pool_after.per_worker_busy_micros[i] -
        pool_before.per_worker_busy_micros[i];
  }
  stats.trace.Counter("pool.tasks_run", stats.pool.tasks_run);
  stats.trace.Counter("pool.busy_micros", stats.pool.busy_micros);

  // --- postprocessor -----------------------------------------------------
  stage_span.emplace("postprocess", "phase");
  phase.Restart();
  Postprocessor postprocessor(&sql_engine_);
  MR_ASSIGN_OR_RETURN(
      stats.output,
      postprocessor.Run(stmt, translation, rules, preprocess->total_groups,
                        preprocess->program));
  stats.postprocess_queries = stats.output.stats;
  stats.postprocess_seconds = phase.ElapsedSeconds();
  stats.trace.Span("postprocess", phase.ElapsedMicros());

  // Peak working-set estimate: the coded cache is alive for the whole core
  // phase; generated queries run one at a time, so only the widest query's
  // operator buffers add on top.
  stats.peak_bytes =
      coded_bytes + std::max(MaxQueryOperatorBytes(stats.preprocess_queries),
                             MaxQueryOperatorBytes(stats.postprocess_queries));

  executed_[ToLower(stmt.output_table)] =
      RenderInfo{stmt.select_support, stmt.select_confidence};

  if (!options.keep_encoded_tables) {
    // Rerun the idempotent drops; this also invalidates the cache.
    for (const GeneratedQuery& q : preprocess->program.drops) {
      MR_RETURN_IF_ERROR(sql_engine_.Execute(q.sql).status());
    }
    // The postprocessor's fixed-name normalized output is scratch too: it
    // must not outlive the run, or concurrent sessions' final catalog
    // state would depend on which run finished last (DESIGN.md §15).
    catalog_->DropTableIfExists("OutputBodies");
    catalog_->DropTableIfExists("OutputHeads");
    InvalidateCache();
    cached_preprocess_.reset();
  }
  return stats;
}

Result<std::string> DataMiningSystem::RenderRules(
    const std::string& output_table) {
  auto it = executed_.find(ToLower(output_table));
  if (it == executed_.end()) {
    return Status::NotFound("no MINE RULE run produced table " + output_table);
  }
  MineRuleStatement stmt;
  stmt.output_table = output_table;
  stmt.select_support = it->second.select_support;
  stmt.select_confidence = it->second.select_confidence;
  return RenderRuleTable(&sql_engine_, stmt);
}

}  // namespace minerule::mr
