#ifndef MINERULE_SUPPORT_RULE_BROWSER_H_
#define MINERULE_SUPPORT_RULE_BROWSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/engine.h"

namespace minerule::support {

/// A decoded rule as the user-support layer presents it.
struct RuleView {
  int64_t body_id = 0;
  int64_t head_id = 0;
  std::vector<std::string> body_items;  // display strings, sorted
  std::vector<std::string> head_items;
  double support = 0;     // 0 when the statement did not project SUPPORT
  double confidence = 0;  // ditto for CONFIDENCE

  /// "{a, b} => {c}".
  std::string ToString() const;
};

/// The "ease of view" half of the paper's User Support module (§3 goals 3
/// and 4; the full interactive environment is the AMORE system of [4]).
/// Loads a MINE RULE output-table triple back out of the database and
/// offers the browsing operations an analyst actually performs: rank,
/// threshold, and search by item.
class RuleBrowser {
 public:
  /// An empty browser; use Load() to populate one.
  RuleBrowser() = default;

  /// Loads <output_table>, <output_table>_Bodies and <output_table>_Heads.
  static Result<RuleBrowser> Load(sql::SqlEngine* engine,
                                  const std::string& output_table);

  const std::string& output_table() const { return output_table_; }
  const std::vector<RuleView>& rules() const { return rules_; }
  size_t size() const { return rules_.size(); }

  /// Top-k by confidence (ties by support), descending.
  std::vector<RuleView> TopByConfidence(size_t k) const;
  /// Top-k by support (ties by confidence), descending.
  std::vector<RuleView> TopBySupport(size_t k) const;
  /// Rules whose body or head contains the item (exact display match).
  std::vector<RuleView> ContainingItem(const std::string& item) const;
  /// Rules at or above both thresholds.
  std::vector<RuleView> AtLeast(double min_support,
                                double min_confidence) const;

  /// Renders a rule list as an aligned table (Figure 2.b style).
  static std::string Render(const std::vector<RuleView>& rules);

 private:
  std::string output_table_;
  std::vector<RuleView> rules_;
};

}  // namespace minerule::support

#endif  // MINERULE_SUPPORT_RULE_BROWSER_H_
