#include "support/rule_browser.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace minerule::support {

std::string RuleView::ToString() const {
  return "{" + Join(body_items, ", ") + "} => {" + Join(head_items, ", ") +
         "}";
}

Result<RuleBrowser> RuleBrowser::Load(sql::SqlEngine* engine,
                                      const std::string& output_table) {
  RuleBrowser browser;
  browser.output_table_ = output_table;

  MR_ASSIGN_OR_RETURN(sql::QueryResult rule_rows,
                      engine->Execute("SELECT * FROM " + output_table));
  const int support_col = rule_rows.schema.FindColumn("SUPPORT");
  const int confidence_col = rule_rows.schema.FindColumn("CONFIDENCE");

  // Collect body/head item display strings keyed by id. Multi-attribute
  // schemas render one item as "(a|b)".
  auto load_side = [&](const std::string& table, const char* id_col)
      -> Result<std::map<int64_t, std::vector<std::string>>> {
    MR_ASSIGN_OR_RETURN(sql::QueryResult rows,
                        engine->Execute("SELECT * FROM " + table));
    MR_ASSIGN_OR_RETURN(size_t id_index,
                        rows.schema.ResolveColumn(id_col));
    std::map<int64_t, std::vector<std::string>> sides;
    for (const Row& row : rows.rows) {
      std::string item;
      for (size_t c = 0; c < row.size(); ++c) {
        if (c == id_index) continue;
        if (!item.empty()) item += "|";
        item += row[c].ToString();
      }
      if (rows.schema.num_columns() > 2) item = "(" + item + ")";
      sides[row[id_index].AsInteger()].push_back(std::move(item));
    }
    for (auto& [id, items] : sides) std::sort(items.begin(), items.end());
    return sides;
  };
  MR_ASSIGN_OR_RETURN(auto bodies,
                      load_side(output_table + "_Bodies", "BodyId"));
  MR_ASSIGN_OR_RETURN(auto heads, load_side(output_table + "_Heads", "HeadId"));

  browser.rules_.reserve(rule_rows.rows.size());
  for (const Row& row : rule_rows.rows) {
    RuleView view;
    view.body_id = row[0].AsInteger();
    view.head_id = row[1].AsInteger();
    view.body_items = bodies[view.body_id];
    view.head_items = heads[view.head_id];
    if (support_col >= 0) view.support = row[support_col].AsDouble();
    if (confidence_col >= 0) view.confidence = row[confidence_col].AsDouble();
    browser.rules_.push_back(std::move(view));
  }
  return browser;
}

namespace {

std::vector<RuleView> TopK(std::vector<RuleView> rules, size_t k,
                           bool by_confidence) {
  std::stable_sort(rules.begin(), rules.end(),
                   [by_confidence](const RuleView& a, const RuleView& b) {
                     const double pa = by_confidence ? a.confidence : a.support;
                     const double pb = by_confidence ? b.confidence : b.support;
                     if (pa != pb) return pa > pb;
                     const double sa = by_confidence ? a.support : a.confidence;
                     const double sb = by_confidence ? b.support : b.confidence;
                     return sa > sb;
                   });
  if (rules.size() > k) rules.resize(k);
  return rules;
}

}  // namespace

std::vector<RuleView> RuleBrowser::TopByConfidence(size_t k) const {
  return TopK(rules_, k, /*by_confidence=*/true);
}

std::vector<RuleView> RuleBrowser::TopBySupport(size_t k) const {
  return TopK(rules_, k, /*by_confidence=*/false);
}

std::vector<RuleView> RuleBrowser::ContainingItem(
    const std::string& item) const {
  std::vector<RuleView> out;
  for (const RuleView& rule : rules_) {
    auto matches = [&](const std::vector<std::string>& items) {
      for (const std::string& candidate : items) {
        if (EqualsIgnoreCase(candidate, item)) return true;
      }
      return false;
    };
    if (matches(rule.body_items) || matches(rule.head_items)) {
      out.push_back(rule);
    }
  }
  return out;
}

std::vector<RuleView> RuleBrowser::AtLeast(double min_support,
                                           double min_confidence) const {
  std::vector<RuleView> out;
  for (const RuleView& rule : rules_) {
    if (rule.support + 1e-12 >= min_support &&
        rule.confidence + 1e-12 >= min_confidence) {
      out.push_back(rule);
    }
  }
  return out;
}

std::string RuleBrowser::Render(const std::vector<RuleView>& rules) {
  Schema schema({{"BODY", DataType::kString},
                 {"HEAD", DataType::kString},
                 {"SUPPORT", DataType::kDouble},
                 {"CONFIDENCE", DataType::kDouble}});
  Table table("rules", schema);
  for (const RuleView& rule : rules) {
    table.AppendUnchecked({Value::String("{" + Join(rule.body_items, ", ") +
                                         "}"),
                           Value::String("{" + Join(rule.head_items, ", ") +
                                         "}"),
                           Value::Double(rule.support),
                           Value::Double(rule.confidence)});
  }
  return table.ToDisplayString(1000);
}

}  // namespace minerule::support
