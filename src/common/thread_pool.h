#ifndef MINERULE_COMMON_THREAD_POOL_H_
#define MINERULE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace minerule {

/// Snapshot of pool-side utilization. Only work that actually ran on a
/// worker thread is counted; ParallelFor chunks executed by the calling
/// thread are intentionally excluded (this measures pool utilization, not
/// total work). Take a snapshot before and after a region and subtract to
/// attribute usage to it.
struct ThreadPoolStats {
  int64_t tasks_run = 0;
  int64_t busy_micros = 0;
  std::vector<int64_t> per_worker_tasks;
  std::vector<int64_t> per_worker_busy_micros;
};

/// Number of hardware threads, never less than 1.
int HardwareThreads();

/// Resolves a user-facing thread-count knob: values <= 0 mean "use the
/// hardware concurrency"; anything else is taken as given. num_threads == 1
/// always yields the serial execution path.
int ResolveThreadCount(int requested);

/// A fixed-size worker pool. Tasks are run in FIFO order; Submit returns a
/// future carrying the task's result or exception. The pool is not
/// work-stealing: a task that blocks on another queued task can stall the
/// pool, which is why ParallelFor (below) has the caller participate and
/// degrades to inline execution when invoked from a pool worker.
class ThreadPool {
 public:
  /// Spawns max(1, num_threads) workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Schedules `fn` on a worker thread.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

  /// True when called from one of this pool's worker threads.
  static bool OnWorkerThread();

  /// Cumulative per-worker utilization since construction.
  ThreadPoolStats Stats() const;

 private:
  /// Per-worker counters, cache-line padded so workers never contend.
  /// Relaxed atomics: readers only need eventually-consistent totals.
  struct alignas(64) WorkerCounters {
    std::atomic<int64_t> tasks_run{0};
    std::atomic<int64_t> busy_micros{0};
  };

  void WorkerLoop(size_t worker_index);

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::unique_ptr<WorkerCounters[]> counters_;
  std::vector<std::thread> workers_;
};

/// The process-wide pool shared by all miners, sized to the hardware
/// concurrency. Created on first use and intentionally leaked so that
/// worker teardown never races static destruction.
ThreadPool& SharedThreadPool();

/// Number of chunks ParallelFor splits [0, total) into for the given
/// thread-count knob: min(total, ResolveThreadCount(num_threads)). Callers
/// that merge per-chunk accumulators size them with this, which keeps the
/// merge deterministic — the chunking depends only on (total, num_threads),
/// never on scheduling.
size_t ParallelChunks(size_t total, int num_threads);

/// Runs fn(chunk, begin, end) for every chunk of the fixed chunking above,
/// using the shared pool, and blocks until all chunks are done. The calling
/// thread claims chunks too, so forward progress never depends on pool
/// availability; when called from a pool worker the whole loop runs inline
/// (nesting would otherwise risk deadlock). The first exception thrown by
/// any chunk is rethrown here after the remaining started chunks finish;
/// unstarted chunks are skipped once an exception is recorded.
void ParallelFor(size_t total, int num_threads,
                 const std::function<void(size_t chunk, size_t begin,
                                          size_t end)>& fn);

/// Number of fixed-size morsels [0, total) splits into: ceil(total /
/// morsel_size). Like ParallelChunks this is a pure function of its
/// arguments, so per-morsel result slots merged in morsel order are
/// deterministic at any thread count.
size_t MorselCount(size_t total, size_t morsel_size);

/// Morsel-grained ParallelFor: runs fn(morsel, begin, end) for every
/// fixed-size morsel of [0, total), with up to ResolveThreadCount(
/// num_threads) threads (the caller included) claiming morsels off an
/// atomic cursor. Unlike ParallelFor's one-chunk-per-thread split, the
/// morsel boundaries do NOT depend on num_threads — only which thread runs
/// a morsel is scheduling-dependent — so results keyed by morsel index are
/// identical at every thread count. Degrades to inline execution from a
/// pool worker, exactly like ParallelFor.
void ParallelForMorsels(size_t total, size_t morsel_size, int num_threads,
                        const std::function<void(size_t morsel, size_t begin,
                                                 size_t end)>& fn);

}  // namespace minerule

#endif  // MINERULE_COMMON_THREAD_POOL_H_
