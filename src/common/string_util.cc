#include "common/string_util.h"

#include <cctype>

namespace minerule {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      pieces.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         EqualsIgnoreCase(s.substr(0, prefix.size()), prefix);
}

}  // namespace minerule
