#ifndef MINERULE_COMMON_TRACE_H_
#define MINERULE_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stopwatch.h"

namespace minerule {

class JsonWriter;

/// One recorded event: either a timed span (micros valid) or a named
/// counter sample (value valid).
struct TraceEvent {
  std::string name;
  int64_t micros = 0;
  int64_t value = 0;
  bool is_span = false;
};

/// Append-only recorder for pipeline phases and counters. Cheap enough to
/// always be on; the events become the "trace" array of
/// MiningRunStats::ToJson.
class TraceRecorder {
 public:
  void Span(std::string name, int64_t micros) {
    events_.push_back({std::move(name), micros, 0, true});
  }

  void Counter(std::string name, int64_t value) {
    events_.push_back({std::move(name), 0, value, false});
  }

  void Clear() { events_.clear(); }

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Writes the events as a JSON array value (caller positions the writer,
  /// e.g. after a Key).
  void AppendJson(JsonWriter* writer) const;

 private:
  std::vector<TraceEvent> events_;
};

/// RAII helper: records a span covering its own lifetime.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, std::string name)
      : recorder_(recorder), name_(std::move(name)) {}
  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->Span(std::move(name_), stopwatch_.ElapsedMicros());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  std::string name_;
  Stopwatch stopwatch_;
};

// ---------------------------------------------------------------------------
// Span tracing (DESIGN.md §11): timestamped, thread-attributed spans over
// the whole pipeline — translate, every generated Q0..Q11/POST query, the
// core (per lattice level / per partition slice), thread-pool tasks —
// exported as Chrome trace-event JSON loadable in Perfetto / about:tracing.
// ---------------------------------------------------------------------------

/// One completed span on one thread. Timestamps are microseconds since the
/// tracer's epoch (process-lifetime steady clock).
struct SpanEvent {
  std::string name;
  const char* category = "";  // static string: "phase", "query", "core", ...
  int tid = 0;
  int64_t start_micros = 0;
  int64_t duration_micros = 0;
};

/// Process-wide span collector with per-thread buffers. Recording appends
/// to the calling thread's own buffer (one uncontended mutex per buffer, so
/// worker threads never serialize on each other); a snapshot walks the
/// buffers in thread-registration order. Disabled (the default) it costs
/// one relaxed atomic load per would-be span.
class SpanTracer {
 public:
  SpanTracer();
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the tracer epoch (monotonic).
  int64_t NowMicros() const;

  /// Names the calling thread in trace exports ("main", "pool-worker-3").
  /// Registers the thread if needed; safe to call repeatedly. A
  /// `preferred_tid` >= 0 pins the thread id on first registration (pool
  /// workers use 100 + worker_index so their ids never depend on the race
  /// of which worker starts first); auto-assigned ids count up from 0.
  void SetCurrentThreadName(const std::string& name, int preferred_tid = -1);

  /// Appends a completed span to the calling thread's buffer. `category`
  /// must point at storage that outlives the tracer (string literals).
  void Record(std::string name, const char* category, int64_t start_micros,
              int64_t duration_micros);

  /// All spans recorded so far, grouped by thread in tid order and in
  /// record order within a thread — deterministic for a deterministic
  /// execution, independent of wall-clock values.
  std::vector<SpanEvent> Snapshot() const;

  /// Registered threads as (tid, name) pairs in tid order.
  std::vector<std::pair<int, std::string>> Threads() const;

  /// Drops all recorded spans; thread registrations (tids, names) survive.
  void Clear();

  /// The full Chrome trace-event file: {"traceEvents": [...]} with one
  /// thread_name metadata event per registered thread and one "ph":"X"
  /// complete event per span. Byte-stable modulo the ts/dur values for a
  /// deterministic execution.
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to `path`.
  Status WriteChromeTraceFile(const std::string& path) const;

 private:
  struct ThreadBuffer {
    int tid = 0;
    std::string name;
    mutable std::mutex mutex;  // uncontended: owner thread vs. snapshots
    std::vector<SpanEvent> events;
  };

  ThreadBuffer* CurrentBuffer(int preferred_tid = -1);

  /// Buffer pointers in tid order, snapshotted under mutex_.
  std::vector<ThreadBuffer*> BuffersByTid() const;

  mutable std::mutex mutex_;  // guards buffers_ (registration, snapshot)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  int next_auto_tid_ = 0;
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
};

/// The process-wide tracer behind --trace-out and the mr_trace_spans system
/// table. Leaked like the shared thread pool.
SpanTracer& GlobalTracer();

/// RAII span against GlobalTracer(). When the tracer is disabled at
/// construction the whole object is inert. With `index` >= 0 the recorded
/// name is "<name>.<index>" (per-slice / per-level spans); the string is
/// only built when tracing is on.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "",
                      int64_t index = -1)
      : name_(GlobalTracer().enabled() ? name : nullptr),
        category_(category),
        index_(index),
        start_(name_ != nullptr ? GlobalTracer().NowMicros() : 0) {}

  /// Dynamic-name variant ("preprocess.Q4"); the string is kept only while
  /// tracing is on.
  ScopedSpan(std::string name, const char* category)
      : category_(category) {
    if (GlobalTracer().enabled()) {
      owned_name_ = std::move(name);
      name_ = owned_name_.c_str();
      start_ = GlobalTracer().NowMicros();
    }
  }

  ~ScopedSpan() {
    if (name_ == nullptr) return;
    SpanTracer& tracer = GlobalTracer();
    std::string name = index_ >= 0
                           ? std::string(name_) + "." + std::to_string(index_)
                           : std::string(name_);
    tracer.Record(std::move(name), category_, start_,
                  tracer.NowMicros() - start_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;  // null when tracing was off at construction
  const char* category_ = "";
  int64_t index_ = -1;
  int64_t start_ = 0;
  std::string owned_name_;  // backing storage for the dynamic-name variant
};

}  // namespace minerule

#endif  // MINERULE_COMMON_TRACE_H_
