#ifndef MINERULE_COMMON_TRACE_H_
#define MINERULE_COMMON_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stopwatch.h"

namespace minerule {

class JsonWriter;

/// One recorded event: either a timed span (micros valid) or a named
/// counter sample (value valid).
struct TraceEvent {
  std::string name;
  int64_t micros = 0;
  int64_t value = 0;
  bool is_span = false;
};

/// Append-only recorder for pipeline phases and counters. Cheap enough to
/// always be on; the events become the "trace" array of
/// MiningRunStats::ToJson.
class TraceRecorder {
 public:
  void Span(std::string name, int64_t micros) {
    events_.push_back({std::move(name), micros, 0, true});
  }

  void Counter(std::string name, int64_t value) {
    events_.push_back({std::move(name), 0, value, false});
  }

  void Clear() { events_.clear(); }

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Writes the events as a JSON array value (caller positions the writer,
  /// e.g. after a Key).
  void AppendJson(JsonWriter* writer) const;

 private:
  std::vector<TraceEvent> events_;
};

/// RAII helper: records a span covering its own lifetime.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, std::string name)
      : recorder_(recorder), name_(std::move(name)) {}
  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->Span(std::move(name_), stopwatch_.ElapsedMicros());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  std::string name_;
  Stopwatch stopwatch_;
};

}  // namespace minerule

#endif  // MINERULE_COMMON_TRACE_H_
