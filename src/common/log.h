#ifndef MINERULE_COMMON_LOG_H_
#define MINERULE_COMMON_LOG_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace minerule {

/// Severity levels, ordered. kOff is only a filter setting, never a line
/// level.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Canonical lower-case name ("debug", "info", "warn", "error", "off").
const char* LogLevelName(LogLevel level);

/// Parses a level name (case-insensitive); false on unknown names.
bool ParseLogLevel(std::string_view name, LogLevel* level);

/// One key=value pair attached to a log line. Values are free-form strings;
/// the formatter quotes and escapes as needed.
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string key, std::string value)
      : key(std::move(key)), value(std::move(value)) {}
  // Without this, a string literal converts to bool, not std::string.
  LogField(std::string key, const char* value)
      : key(std::move(key)), value(value) {}
  LogField(std::string key, int64_t value)
      : key(std::move(key)), value(std::to_string(value)) {}
  LogField(std::string key, uint64_t value)
      : key(std::move(key)), value(std::to_string(value)) {}
  LogField(std::string key, int value)
      : key(std::move(key)), value(std::to_string(value)) {}
  LogField(std::string key, bool value)
      : key(std::move(key)), value(value ? "true" : "false") {}
};

/// Structured, leveled logging for the serving path (DESIGN.md §16).
///
/// Every line carries a monotonic sequence number, the level, a component
/// ("server.session", "server.socket", ...), a human message and zero or
/// more key=value fields (session/statement ids, byte counts, ...). Two
/// wire formats, chosen per logger:
///
///   key=value (default):
///     seq=12 level=info component=server.session session=3 msg="..." ...
///   JSON (one object per line, parseable by ValidateJson):
///     {"seq":12,"level":"info","component":"server.session",...}
///
/// The sink defaults to stderr; tests install a capture sink. All methods
/// are thread-safe; formatting happens outside the sink lock only for the
/// line body, so concurrent writers never interleave bytes within a line.
class Logger {
 public:
  Logger() = default;
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  using Sink = std::function<void(const std::string& line)>;

  void Log(LogLevel level, std::string_view component,
           std::string_view message, std::vector<LogField> fields = {});

  /// Lines below this level are dropped before formatting.
  void set_min_level(LogLevel level);
  LogLevel min_level() const;

  /// True when a Log call at `level` would be emitted — guard expensive
  /// field construction (e.g. a flight-recorder dump) behind this.
  bool Enabled(LogLevel level) const { return level >= min_level(); }

  /// Switches between key=value (false, the default) and JSON lines.
  void set_json(bool json);
  bool json() const;

  /// Replaces the sink; an empty function restores the stderr default.
  /// The sink receives one complete line (no trailing newline).
  void set_sink(Sink sink);

  /// Lines emitted (post-filter) since process start.
  int64_t lines_emitted() const;

  /// Formats one line without emitting it (the formatter the sink path
  /// uses; exposed so tests can pin the format).
  static std::string FormatLine(bool json, int64_t seq, LogLevel level,
                                std::string_view component,
                                std::string_view message,
                                const std::vector<LogField>& fields);

 private:
  mutable std::mutex mutex_;
  LogLevel min_level_ = LogLevel::kInfo;
  bool json_ = false;
  Sink sink_;
  int64_t next_seq_ = 1;
  int64_t emitted_ = 0;
};

/// The process-wide logger. First use seeds the minimum level from
/// MINERULE_LOG_LEVEL (debug|info|warn|error|off; default info) and the
/// format from MINERULE_LOG_JSON (any non-empty value switches to JSON
/// lines). Intentionally leaked, like the metrics registry, so worker
/// threads may log during teardown.
Logger& GlobalLog();

}  // namespace minerule

#endif  // MINERULE_COMMON_LOG_H_
