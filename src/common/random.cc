#include "common/random.h"

#include <cmath>

namespace minerule {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t s = seed;
  for (uint64_t& lane : state_) lane = SplitMix64(s);
}

uint64_t Random::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::NextInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Random::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Random::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int Random::NextPoisson(double mean) {
  if (mean <= 0.0) return 0;
  const double limit = std::exp(-mean);
  double product = NextDouble();
  int count = 0;
  while (product > limit) {
    product *= NextDouble();
    ++count;
  }
  return count;
}

double Random::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace minerule
