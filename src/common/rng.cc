#include "common/rng.h"

namespace minerule {

namespace {

/// SplitMix64 finalizer (also used by Random's seeding); full-avalanche, so
/// nearby (root, purpose, index) keys land on unrelated seeds.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t DeriveStreamSeed(uint64_t root_seed, std::string_view purpose,
                          uint64_t index) {
  // FNV-1a over the label, seeded with the root.
  uint64_t h = 0xcbf29ce484222325ULL ^ Mix(root_seed);
  for (char c : purpose) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= Mix(index + 0x9e3779b97f4a7c15ULL);
  return Mix(h);
}

}  // namespace minerule
