#ifndef MINERULE_COMMON_STOPWATCH_H_
#define MINERULE_COMMON_STOPWATCH_H_

#include <chrono>

namespace minerule {

/// Monotonic wall-clock stopwatch used for per-phase statistics.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart();

  /// Elapsed time since construction or the last Restart(), in seconds.
  double ElapsedSeconds() const;

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace minerule

#endif  // MINERULE_COMMON_STOPWATCH_H_
