#ifndef MINERULE_COMMON_METRICS_H_
#define MINERULE_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace minerule {

class JsonWriter;

/// Naming convention (DESIGN.md §11): `stage.component.name`, e.g.
/// `engine.runs`, `sql.join.build_peak_bytes`, `core.partition.slices`.
///
/// The registry hands out stable handle pointers; hot paths cache the handle
/// (typically in a function-local static) and never touch the registry map
/// again. All mutation is lock-free: counters and histograms are striped
/// across cache-line-padded atomic shards indexed by a per-thread slot, so
/// concurrent workers do not contend; a snapshot merges the shards.
inline constexpr size_t kMetricStripes = 16;

/// Returns a small per-thread stripe index in [0, kMetricStripes).
size_t MetricThreadStripe();

/// Monotonic counter, striped per thread; merged on snapshot.
class Counter {
 public:
  void Add(int64_t delta) {
    shards_[MetricThreadStripe()].value.fetch_add(delta,
                                                  std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  int64_t Value() const {
    int64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::array<Shard, kMetricStripes> shards_;
};

/// Point-in-time gauge with last-set and running-max semantics. Peak-bytes
/// accounting uses UpdateMax so concurrent operators keep the high-water
/// mark without locks.
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
    UpdateMax(value);
  }

  /// Raises the gauge (and its peak) to at least `value`.
  void UpdateMax(int64_t value) {
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen && !max_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
    seen = value_.load(std::memory_order_relaxed);
    while (value > seen && !value_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], with
/// one implicit overflow bucket above the last bound. Counts are striped
/// like Counter; sum/min/max are tracked so means and bucket-interpolated
/// percentiles come out of a snapshot.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  void Observe(int64_t value);

  const std::vector<int64_t>& bounds() const { return bounds_; }

  struct Snapshot {
    std::vector<int64_t> bounds;   // upper bound per finite bucket
    std::vector<int64_t> counts;   // bounds.size() + 1 (overflow last)
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0;  // 0 when count == 0
    int64_t max = 0;

    double Mean() const {
      return count == 0 ? 0.0 : static_cast<double>(sum) / count;
    }
    /// Linear interpolation inside the covering bucket; q in [0, 1].
    /// The overflow bucket reports its lower bound (no upper edge).
    double Percentile(double q) const;
  };
  Snapshot Snap() const;

 private:
  struct alignas(64) Shard {
    // One slot per finite bucket plus overflow; sized at construction.
    std::vector<std::atomic<int64_t>> counts;
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{INT64_MAX};
    std::atomic<int64_t> max{INT64_MIN};
  };

  std::vector<int64_t> bounds_;
  std::array<Shard, kMetricStripes> shards_;
};

/// One merged metric in a registry snapshot, ready for display or for the
/// mr_metrics system table.
struct MetricSample {
  std::string name;
  std::string kind;  // "counter" | "gauge" | "histogram"
  double value = 0;  // counter total, gauge value, histogram mean
  int64_t count = 0; // observations (histograms), else 0
  double sum = 0;    // histogram sum; gauge peak; counter total
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Named metric registry. Get* registers on first use (mutex-guarded) and
/// returns a stable pointer; snapshots are sorted by name and therefore
/// deterministic for a fixed set of touched metrics.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Registers with the given bounds on first use; later calls return the
  /// existing histogram regardless of `bounds`.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds);

  std::vector<MetricSample> Snapshot() const;

  /// Prometheus text exposition format (version 0.0.4) of the whole
  /// registry. Metric names are `minerule_` plus the registry name with
  /// every non-[a-zA-Z0-9_] mapped to '_': `server.statement_micros` ->
  /// `minerule_server_statement_micros`. Counters and gauges emit one
  /// sample each (gauges also emit a `_peak` gauge); histograms emit
  /// cumulative `_bucket{le="..."}` series ending in `le="+Inf"`, plus
  /// `_sum` and `_count`. Output is grouped by kind with each group sorted
  /// by name, so it is deterministic for a fixed set of touched metrics.
  /// Served by the socket front end's \metrics command and
  /// `minerule_server --metrics-out` (DESIGN.md §16).
  std::string FormatPrometheus() const;

  /// Human-readable aligned table of a snapshot (the shell's \metrics).
  static std::string Format(const std::vector<MetricSample>& samples);

  /// Serializes a snapshot as a JSON array (fuzz --metrics, benches).
  static void AppendJson(const std::vector<MetricSample>& samples,
                         JsonWriter* writer);

  /// Drops every registered metric. Tests only: outstanding handles are
  /// invalidated, so no concurrent mutator may be running.
  void ResetForTesting();

 private:
  mutable std::mutex mutex_;
  // std::map: stable node addresses, deterministic (sorted) iteration.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// The process-wide registry every component reports into (the source of
/// the mr_metrics system table). Intentionally leaked, like the shared
/// thread pool, so worker threads can touch it during teardown.
MetricsRegistry& GlobalMetrics();

/// Default bucket bounds for microsecond-scale latency histograms:
/// 1,2,5-spaced from 10us to 10s.
std::vector<int64_t> LatencyBucketsMicros();

/// Validating parser for Prometheus text exposition format. Returns OK iff
/// every line is a comment (`# TYPE` / `# HELP`) or a well-formed sample
/// (`name{labels} value`), every histogram's `_bucket` series is cumulative
/// (counts non-decreasing as `le` increases), ends in `le="+Inf"`, and that
/// final bucket equals the histogram's `_count` sample. The CI smoke gates
/// and unit tests run FormatPrometheus output through this.
Status ValidatePrometheusText(std::string_view text);

}  // namespace minerule

#endif  // MINERULE_COMMON_METRICS_H_
