#include "common/log.h"

#include <cstdio>
#include <cstdlib>

#include "common/json.h"
#include "common/string_util.h"

namespace minerule {

namespace {

/// True when the value can go on the wire bare (no quotes) in key=value
/// format: non-empty, printable, no spaces/quotes/equals.
bool IsBareValue(std::string_view value) {
  if (value.empty()) return false;
  for (char c : value) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u <= ' ' || u >= 0x7f || c == '"' || c == '=' || c == '\\') {
      return false;
    }
  }
  return true;
}

/// Quotes and escapes a value for key=value format (JSON string rules, so
/// a consumer can unescape with any JSON string parser).
std::string QuoteValue(std::string_view value) {
  return "\"" + JsonEscape(value) + "\"";
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "info";
}

bool ParseLogLevel(std::string_view name, LogLevel* level) {
  const std::string lower = ToLower(name);
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *level = LogLevel::kWarn;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else if (lower == "off" || lower == "none") {
    *level = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

std::string Logger::FormatLine(bool json, int64_t seq, LogLevel level,
                               std::string_view component,
                               std::string_view message,
                               const std::vector<LogField>& fields) {
  if (json) {
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("seq").Int(seq);
    writer.Key("level").String(LogLevelName(level));
    writer.Key("component").String(component);
    writer.Key("msg").String(message);
    for (const LogField& field : fields) {
      writer.Key(field.key).String(field.value);
    }
    writer.EndObject();
    return writer.str();
  }
  std::string line = "seq=" + std::to_string(seq) +
                     " level=" + LogLevelName(level) + " component=";
  line.append(component);
  line += " msg=" + QuoteValue(message);
  for (const LogField& field : fields) {
    line += " " + field.key + "=";
    line += IsBareValue(field.value) ? field.value : QuoteValue(field.value);
  }
  return line;
}

void Logger::Log(LogLevel level, std::string_view component,
                 std::string_view message, std::vector<LogField> fields) {
  if (level < min_level() || level == LogLevel::kOff) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string line = FormatLine(json_, next_seq_++, level, component,
                                      message, fields);
  ++emitted_;
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

void Logger::set_min_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mutex_);
  min_level_ = level;
}

LogLevel Logger::min_level() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_level_;
}

void Logger::set_json(bool json) {
  std::lock_guard<std::mutex> lock(mutex_);
  json_ = json;
}

bool Logger::json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return json_;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

int64_t Logger::lines_emitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
}

Logger& GlobalLog() {
  static Logger* logger = [] {
    Logger* instance = new Logger();
    if (const char* env = std::getenv("MINERULE_LOG_LEVEL")) {
      LogLevel level;
      if (ParseLogLevel(env, &level)) instance->set_min_level(level);
    }
    if (const char* env = std::getenv("MINERULE_LOG_JSON");
        env != nullptr && env[0] != '\0') {
      instance->set_json(true);
    }
    return instance;
  }();
  return *logger;
}

}  // namespace minerule
