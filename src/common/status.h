#ifndef MINERULE_COMMON_STATUS_H_
#define MINERULE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace minerule {

/// Error categories used throughout the library. The library never throws;
/// every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something nonsensical
  kNotFound,          // catalog object / item does not exist
  kAlreadyExists,     // catalog object name collision
  kParseError,        // SQL or MINE RULE text could not be parsed
  kSemanticError,     // statement parsed but violates semantic rules (§4.1)
  kTypeError,         // expression/value type mismatch
  kExecutionError,    // runtime failure while evaluating a query
  kUnimplemented,     // feature intentionally outside the supported subset
  kInternal,          // invariant violation: a bug in this library
};

/// Returns a stable human-readable name, e.g. "ParseError".
const char* StatusCodeName(StatusCode code);

/// A success-or-error value in the style of absl::Status / rocksdb::Status.
///
/// The default-constructed Status is OK. Error statuses carry a message that
/// is meant for developers and error logs, not for end users.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates an error Status from the enclosing function.
#define MR_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::minerule::Status _mr_status = (expr);      \
    if (!_mr_status.ok()) return _mr_status;     \
  } while (false)

#define MR_CONCAT_IMPL(a, b) a##b
#define MR_CONCAT(a, b) MR_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>), propagating its error; on success binds
/// the moved value to `lhs`, which may be a declaration.
#define MR_ASSIGN_OR_RETURN(lhs, rexpr)                                \
  MR_ASSIGN_OR_RETURN_IMPL(MR_CONCAT(_mr_result_, __LINE__), lhs, rexpr)

#define MR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value_unsafe()

}  // namespace minerule

#endif  // MINERULE_COMMON_STATUS_H_
