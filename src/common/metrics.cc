#include "common/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "common/json.h"

namespace minerule {

size_t MetricThreadStripe() {
  // Sequential per-thread slot, wrapped onto the stripe count. Stable for
  // the thread's lifetime, so a thread always hits the same shard.
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return slot;
}

Histogram::Histogram(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (Shard& shard : shards_) {
    shard.counts = std::vector<std::atomic<int64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(int64_t value) {
  Shard& shard = shards_[MetricThreadStripe()];
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = shard.min.load(std::memory_order_relaxed);
  while (value < seen && !shard.min.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen && !shard.max.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < shard.counts.size(); ++i) {
      snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    min = std::min(min, shard.min.load(std::memory_order_relaxed));
    max = std::max(max, shard.max.load(std::memory_order_relaxed));
  }
  for (int64_t c : snap.counts) snap.count += c;
  snap.min = snap.count == 0 ? 0 : min;
  snap.max = snap.count == 0 ? 0 : max;
  return snap;
}

double Histogram::Snapshot::Percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const int64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= target) {
      // Bucket i covers (lower, upper]; interpolate within it. The real
      // observed extrema tighten the edge buckets.
      double lower = i == 0 ? static_cast<double>(min)
                            : static_cast<double>(bounds[i - 1]);
      double upper = i < bounds.size() ? static_cast<double>(bounds[i])
                                       : static_cast<double>(max);
      lower = std::max(lower, static_cast<double>(min));
      upper = std::min(upper, static_cast<double>(max));
      if (upper <= lower) return upper;
      const double fraction =
          (target - static_cast<double>(cumulative)) / counts[i];
      return lower + fraction * (upper - lower);
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return &counters_[name];
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return &gauges_[name];
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  // try_emplace constructs the histogram in place (atomics are immovable).
  return &histograms_.try_emplace(name, std::move(bounds)).first->second;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> samples;
  samples.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = "counter";
    s.value = static_cast<double>(counter.Value());
    s.sum = s.value;
    samples.push_back(std::move(s));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = "gauge";
    s.value = static_cast<double>(gauge.Value());
    s.sum = static_cast<double>(gauge.Max());
    samples.push_back(std::move(s));
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram.Snap();
    MetricSample s;
    s.name = name;
    s.kind = "histogram";
    s.value = snap.Mean();
    s.count = snap.count;
    s.sum = static_cast<double>(snap.sum);
    s.p50 = snap.Percentile(0.50);
    s.p95 = snap.Percentile(0.95);
    s.p99 = snap.Percentile(0.99);
    samples.push_back(std::move(s));
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return samples;
}

std::string MetricsRegistry::Format(const std::vector<MetricSample>& samples) {
  size_t width = 4;
  for (const MetricSample& s : samples) width = std::max(width, s.name.size());
  std::string out;
  char line[256];
  for (const MetricSample& s : samples) {
    if (s.kind == "histogram") {
      std::snprintf(line, sizeof(line),
                    "%-*s  histogram  count=%lld mean=%.1f p50=%.1f "
                    "p95=%.1f p99=%.1f\n",
                    static_cast<int>(width), s.name.c_str(),
                    static_cast<long long>(s.count), s.value, s.p50, s.p95,
                    s.p99);
    } else if (s.kind == "gauge") {
      std::snprintf(line, sizeof(line), "%-*s  gauge      %.0f (peak %.0f)\n",
                    static_cast<int>(width), s.name.c_str(), s.value, s.sum);
    } else {
      std::snprintf(line, sizeof(line), "%-*s  counter    %.0f\n",
                    static_cast<int>(width), s.name.c_str(), s.value);
    }
    out += line;
  }
  if (samples.empty()) out = "(no metrics recorded)\n";
  return out;
}

void MetricsRegistry::AppendJson(const std::vector<MetricSample>& samples,
                                 JsonWriter* writer) {
  writer->BeginArray();
  for (const MetricSample& s : samples) {
    writer->BeginObject();
    writer->Key("name").String(s.name);
    writer->Key("kind").String(s.kind);
    writer->Key("value").Double(s.value);
    if (s.kind == "histogram") {
      writer->Key("count").Int(s.count);
      writer->Key("sum").Double(s.sum);
      writer->Key("p50").Double(s.p50);
      writer->Key("p95").Double(s.p95);
      writer->Key("p99").Double(s.p99);
    } else if (s.kind == "gauge") {
      writer->Key("peak").Double(s.sum);
    }
    writer->EndObject();
  }
  writer->EndArray();
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::vector<int64_t> LatencyBucketsMicros() {
  std::vector<int64_t> bounds;
  for (int64_t decade = 10; decade <= 10'000'000; decade *= 10) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2);
    bounds.push_back(decade * 5);
  }
  return bounds;
}

}  // namespace minerule
