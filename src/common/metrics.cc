#include "common/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/json.h"

namespace minerule {

size_t MetricThreadStripe() {
  // Sequential per-thread slot, wrapped onto the stripe count. Stable for
  // the thread's lifetime, so a thread always hits the same shard.
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return slot;
}

Histogram::Histogram(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (Shard& shard : shards_) {
    shard.counts = std::vector<std::atomic<int64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(int64_t value) {
  Shard& shard = shards_[MetricThreadStripe()];
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = shard.min.load(std::memory_order_relaxed);
  while (value < seen && !shard.min.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen && !shard.max.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < shard.counts.size(); ++i) {
      snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    min = std::min(min, shard.min.load(std::memory_order_relaxed));
    max = std::max(max, shard.max.load(std::memory_order_relaxed));
  }
  for (int64_t c : snap.counts) snap.count += c;
  snap.min = snap.count == 0 ? 0 : min;
  snap.max = snap.count == 0 ? 0 : max;
  return snap;
}

double Histogram::Snapshot::Percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const int64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= target) {
      // Bucket i covers (lower, upper]; interpolate within it. The real
      // observed extrema tighten the edge buckets.
      double lower = i == 0 ? static_cast<double>(min)
                            : static_cast<double>(bounds[i - 1]);
      double upper = i < bounds.size() ? static_cast<double>(bounds[i])
                                       : static_cast<double>(max);
      lower = std::max(lower, static_cast<double>(min));
      upper = std::min(upper, static_cast<double>(max));
      if (upper <= lower) return upper;
      const double fraction =
          (target - static_cast<double>(cumulative)) / counts[i];
      return lower + fraction * (upper - lower);
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return &counters_[name];
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return &gauges_[name];
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  // try_emplace constructs the histogram in place (atomics are immovable).
  return &histograms_.try_emplace(name, std::move(bounds)).first->second;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> samples;
  samples.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = "counter";
    s.value = static_cast<double>(counter.Value());
    s.sum = s.value;
    samples.push_back(std::move(s));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = "gauge";
    s.value = static_cast<double>(gauge.Value());
    s.sum = static_cast<double>(gauge.Max());
    samples.push_back(std::move(s));
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram.Snap();
    MetricSample s;
    s.name = name;
    s.kind = "histogram";
    s.value = snap.Mean();
    s.count = snap.count;
    s.sum = static_cast<double>(snap.sum);
    s.p50 = snap.Percentile(0.50);
    s.p95 = snap.Percentile(0.95);
    s.p99 = snap.Percentile(0.99);
    samples.push_back(std::move(s));
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return samples;
}

namespace {

/// `server.statement_micros` -> `minerule_server_statement_micros`.
std::string PrometheusName(const std::string& name) {
  std::string out = "minerule_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendSample(std::string* out, const std::string& name, double value) {
  char buf[64];
  // Counters/gauges/bucket counts are integral in this registry; emit them
  // without a fractional part so the text round-trips exactly.
  if (value == static_cast<double>(static_cast<long long>(value))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  *out += name + " " + buf + "\n";
}

}  // namespace

std::string MetricsRegistry::FormatPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    AppendSample(&out, prom, static_cast<double>(counter.Value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    AppendSample(&out, prom, static_cast<double>(gauge.Value()));
    out += "# TYPE " + prom + "_peak gauge\n";
    AppendSample(&out, prom + "_peak", static_cast<double>(gauge.Max()));
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string prom = PrometheusName(name);
    const Histogram::Snapshot snap = histogram.Snap();
    out += "# TYPE " + prom + " histogram\n";
    int64_t cumulative = 0;
    for (size_t i = 0; i < snap.bounds.size(); ++i) {
      cumulative += snap.counts[i];
      AppendSample(&out,
                   prom + "_bucket{le=\"" + std::to_string(snap.bounds[i]) +
                       "\"}",
                   static_cast<double>(cumulative));
    }
    AppendSample(&out, prom + "_bucket{le=\"+Inf\"}",
                 static_cast<double>(snap.count));
    AppendSample(&out, prom + "_sum", static_cast<double>(snap.sum));
    AppendSample(&out, prom + "_count", static_cast<double>(snap.count));
  }
  return out;
}

std::string MetricsRegistry::Format(const std::vector<MetricSample>& samples) {
  size_t width = 4;
  for (const MetricSample& s : samples) width = std::max(width, s.name.size());
  std::string out;
  char line[256];
  for (const MetricSample& s : samples) {
    if (s.kind == "histogram") {
      std::snprintf(line, sizeof(line),
                    "%-*s  histogram  count=%lld mean=%.1f p50=%.1f "
                    "p95=%.1f p99=%.1f\n",
                    static_cast<int>(width), s.name.c_str(),
                    static_cast<long long>(s.count), s.value, s.p50, s.p95,
                    s.p99);
    } else if (s.kind == "gauge") {
      std::snprintf(line, sizeof(line), "%-*s  gauge      %.0f (peak %.0f)\n",
                    static_cast<int>(width), s.name.c_str(), s.value, s.sum);
    } else {
      std::snprintf(line, sizeof(line), "%-*s  counter    %.0f\n",
                    static_cast<int>(width), s.name.c_str(), s.value);
    }
    out += line;
  }
  if (samples.empty()) out = "(no metrics recorded)\n";
  return out;
}

void MetricsRegistry::AppendJson(const std::vector<MetricSample>& samples,
                                 JsonWriter* writer) {
  writer->BeginArray();
  for (const MetricSample& s : samples) {
    writer->BeginObject();
    writer->Key("name").String(s.name);
    writer->Key("kind").String(s.kind);
    writer->Key("value").Double(s.value);
    if (s.kind == "histogram") {
      writer->Key("count").Int(s.count);
      writer->Key("sum").Double(s.sum);
      writer->Key("p50").Double(s.p50);
      writer->Key("p95").Double(s.p95);
      writer->Key("p99").Double(s.p99);
    } else if (s.kind == "gauge") {
      writer->Key("peak").Double(s.sum);
    }
    writer->EndObject();
  }
  writer->EndArray();
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

bool IsMetricNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

/// State accumulated for one histogram family while validating.
struct HistogramSeries {
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative count)
  bool has_inf = false;
  double inf_count = 0;
  bool has_count = false;
  double count = 0;
  bool has_sum = false;
};

}  // namespace

Status ValidatePrometheusText(std::string_view text) {
  std::map<std::string, HistogramSeries> histograms;
  std::map<std::string, std::string> types;  // name -> declared type
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t end = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, end == std::string_view::npos ? text.size() - pos
                                                       : end - pos);
    pos = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;
    if (line.empty()) continue;
    const std::string where = "prometheus line " + std::to_string(line_no);

    if (line[0] == '#') {
      // Only "# TYPE <name> <type>" and "# HELP <name> <text>" comments.
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const size_t space = rest.find(' ');
        if (space == std::string_view::npos) {
          return Status::InvalidArgument(where + ": malformed TYPE comment");
        }
        const std::string name(rest.substr(0, space));
        const std::string type(rest.substr(space + 1));
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return Status::InvalidArgument(where + ": unknown type " + type);
        }
        types[name] = type;
        continue;
      }
      if (line.rfind("# HELP ", 0) == 0) continue;
      return Status::InvalidArgument(where + ": unrecognized comment");
    }

    // Sample: name[{labels}] value
    size_t i = 0;
    while (i < line.size() && IsMetricNameChar(line[i], i == 0)) ++i;
    if (i == 0) {
      return Status::InvalidArgument(where + ": missing metric name");
    }
    const std::string name(line.substr(0, i));
    std::string le;
    if (i < line.size() && line[i] == '{') {
      const size_t close = line.find('}', i);
      if (close == std::string_view::npos) {
        return Status::InvalidArgument(where + ": unterminated label set");
      }
      const std::string_view labels = line.substr(i + 1, close - i - 1);
      const size_t le_pos = labels.find("le=\"");
      if (le_pos != std::string_view::npos) {
        const size_t quote = labels.find('"', le_pos + 4);
        if (quote == std::string_view::npos) {
          return Status::InvalidArgument(where + ": unterminated le label");
        }
        le = std::string(labels.substr(le_pos + 4, quote - le_pos - 4));
      }
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      return Status::InvalidArgument(where + ": expected ' ' before value");
    }
    const std::string value_text(line.substr(i + 1));
    char* parse_end = nullptr;
    const double value = std::strtod(value_text.c_str(), &parse_end);
    if (value_text.empty() || parse_end == value_text.c_str() ||
        *parse_end != '\0') {
      return Status::InvalidArgument(where + ": bad sample value '" +
                                     value_text + "'");
    }

    // Histogram family bookkeeping keyed on the base name.
    auto family_of = [&](const std::string& suffix) {
      return name.size() > suffix.size() &&
                     name.compare(name.size() - suffix.size(), suffix.size(),
                                  suffix) == 0
                 ? name.substr(0, name.size() - suffix.size())
                 : std::string();
    };
    if (const std::string family = family_of("_bucket"); !family.empty()) {
      if (le.empty()) {
        return Status::InvalidArgument(where + ": _bucket without le label");
      }
      HistogramSeries& series = histograms[family];
      if (le == "+Inf") {
        series.has_inf = true;
        series.inf_count = value;
      } else {
        char* le_end = nullptr;
        const double bound = std::strtod(le.c_str(), &le_end);
        if (*le_end != '\0') {
          return Status::InvalidArgument(where + ": bad le bound " + le);
        }
        series.buckets.emplace_back(bound, value);
      }
      continue;
    }
    if (const std::string family = family_of("_count"); !family.empty()) {
      if (histograms.count(family) != 0) {
        histograms[family].has_count = true;
        histograms[family].count = value;
      }
      continue;
    }
    if (const std::string family = family_of("_sum"); !family.empty()) {
      if (histograms.count(family) != 0) histograms[family].has_sum = true;
      continue;
    }
  }

  for (const auto& [family, series] : histograms) {
    double prev_bound = -1e308;
    double prev_count = -1;
    for (const auto& [bound, count] : series.buckets) {
      if (bound <= prev_bound) {
        return Status::InvalidArgument("histogram " + family +
                                       ": le bounds not increasing");
      }
      if (count < prev_count) {
        return Status::InvalidArgument("histogram " + family +
                                       ": bucket counts not cumulative");
      }
      prev_bound = bound;
      prev_count = count;
    }
    if (!series.has_inf) {
      return Status::InvalidArgument("histogram " + family +
                                     ": missing le=\"+Inf\" bucket");
    }
    if (series.inf_count < prev_count) {
      return Status::InvalidArgument("histogram " + family +
                                     ": +Inf bucket below a finite bucket");
    }
    if (!series.has_count || !series.has_sum) {
      return Status::InvalidArgument("histogram " + family +
                                     ": missing _count or _sum");
    }
    if (series.count != series.inf_count) {
      return Status::InvalidArgument("histogram " + family +
                                     ": _count differs from +Inf bucket");
    }
  }
  return Status::OK();
}

std::vector<int64_t> LatencyBucketsMicros() {
  std::vector<int64_t> bounds;
  for (int64_t decade = 10; decade <= 10'000'000; decade *= 10) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2);
    bounds.push_back(decade * 5);
  }
  return bounds;
}

}  // namespace minerule
