#include "common/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/json.h"

namespace minerule {

void TraceRecorder::AppendJson(JsonWriter* writer) const {
  writer->BeginArray();
  for (const TraceEvent& event : events_) {
    writer->BeginObject();
    writer->Key("name").String(event.name);
    writer->Key("kind").String(event.is_span ? "span" : "counter");
    if (event.is_span) {
      writer->Key("micros").Int(event.micros);
    } else {
      writer->Key("value").Int(event.value);
    }
    writer->EndObject();
  }
  writer->EndArray();
}

SpanTracer::SpanTracer() : epoch_(std::chrono::steady_clock::now()) {}

int64_t SpanTracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

SpanTracer::ThreadBuffer* SpanTracer::CurrentBuffer(int preferred_tid) {
  // Per-thread cache of the buffer registered with *this* tracer. The cache
  // is validated against the owner so a second tracer instance (tests)
  // re-resolves instead of writing into the wrong tracer's buffer.
  thread_local SpanTracer* cached_owner = nullptr;
  thread_local ThreadBuffer* cached_buffer = nullptr;
  if (cached_owner == this) return cached_buffer;

  std::lock_guard<std::mutex> lock(mutex_);
  auto buffer = std::make_unique<ThreadBuffer>();
  if (preferred_tid >= 0) {
    buffer->tid = preferred_tid;
  } else {
    buffer->tid = next_auto_tid_++;
  }
  buffer->name = "thread-" + std::to_string(buffer->tid);
  buffers_.push_back(std::move(buffer));
  cached_owner = this;
  cached_buffer = buffers_.back().get();
  return cached_buffer;
}

std::vector<SpanTracer::ThreadBuffer*> SpanTracer::BuffersByTid() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ThreadBuffer*> out;
  out.reserve(buffers_.size());
  for (const auto& buffer : buffers_) out.push_back(buffer.get());
  std::sort(out.begin(), out.end(),
            [](const ThreadBuffer* a, const ThreadBuffer* b) {
              return a->tid < b->tid;
            });
  return out;
}

void SpanTracer::SetCurrentThreadName(const std::string& name,
                                      int preferred_tid) {
  ThreadBuffer* buffer = CurrentBuffer(preferred_tid);
  std::lock_guard<std::mutex> lock(buffer->mutex);
  buffer->name = name;
}

void SpanTracer::Record(std::string name, const char* category,
                        int64_t start_micros, int64_t duration_micros) {
  ThreadBuffer* buffer = CurrentBuffer();
  std::lock_guard<std::mutex> lock(buffer->mutex);
  SpanEvent event;
  event.name = std::move(name);
  event.category = category;
  event.tid = buffer->tid;
  event.start_micros = start_micros;
  event.duration_micros = duration_micros;
  buffer->events.push_back(std::move(event));
}

std::vector<SpanEvent> SpanTracer::Snapshot() const {
  std::vector<SpanEvent> out;
  for (ThreadBuffer* buffer : BuffersByTid()) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  return out;
}

std::vector<std::pair<int, std::string>> SpanTracer::Threads() const {
  std::vector<std::pair<int, std::string>> out;
  for (ThreadBuffer* buffer : BuffersByTid()) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    out.emplace_back(buffer->tid, buffer->name);
  }
  return out;
}

void SpanTracer::Clear() {
  for (ThreadBuffer* buffer : BuffersByTid()) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::string SpanTracer::ChromeTraceJson() const {
  // Chrome trace-event format (the JSON Object Format variant): metadata
  // events name the threads, "X" complete events carry the spans. ts/dur
  // are microseconds. Everything except ts/dur is a deterministic function
  // of the execution, and events are emitted in (tid, record-order), never
  // sorted by timestamp — that is what makes the export byte-stable modulo
  // timestamps.
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const auto& [tid, name] : Threads()) {
    w.BeginObject();
    w.Key("name").String("thread_name");
    w.Key("ph").String("M");
    w.Key("pid").Int(1);
    w.Key("tid").Int(tid);
    w.Key("args").BeginObject();
    w.Key("name").String(name);
    w.EndObject();
    w.EndObject();
  }
  for (const SpanEvent& span : Snapshot()) {
    w.BeginObject();
    w.Key("name").String(span.name);
    w.Key("cat").String(*span.category != '\0' ? span.category : "default");
    w.Key("ph").String("X");
    w.Key("pid").Int(1);
    w.Key("tid").Int(span.tid);
    w.Key("ts").Int(span.start_micros);
    w.Key("dur").Int(span.duration_micros);
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.EndObject();
  return w.str();
}

Status SpanTracer::WriteChromeTraceFile(const std::string& path) const {
  const std::string json = ChromeTraceJson();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::ExecutionError("cannot open trace file " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const int close_error = std::fclose(file);
  if (written != json.size() || close_error != 0) {
    return Status::ExecutionError("short write to trace file " + path);
  }
  return Status::OK();
}

SpanTracer& GlobalTracer() {
  static SpanTracer* tracer = new SpanTracer();
  return *tracer;
}

}  // namespace minerule
