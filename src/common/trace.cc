#include "common/trace.h"

#include "common/json.h"

namespace minerule {

void TraceRecorder::AppendJson(JsonWriter* writer) const {
  writer->BeginArray();
  for (const TraceEvent& event : events_) {
    writer->BeginObject();
    writer->Key("name").String(event.name);
    writer->Key("kind").String(event.is_span ? "span" : "counter");
    if (event.is_span) {
      writer->Key("micros").Int(event.micros);
    } else {
      writer->Key("value").Int(event.value);
    }
    writer->EndObject();
  }
  writer->EndArray();
}

}  // namespace minerule
