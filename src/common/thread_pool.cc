#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/metrics.h"
#include "common/trace.h"

namespace minerule {

namespace {

/// Set for the lifetime of a worker thread; lets ParallelFor detect nested
/// invocations and fall back to inline execution.
thread_local bool t_on_pool_worker = false;

}  // namespace

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ResolveThreadCount(int requested) {
  return requested <= 0 ? HardwareThreads() : requested;
}

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  counters_ = std::make_unique<WorkerCounters[]>(static_cast<size_t>(count));
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::OnWorkerThread() { return t_on_pool_worker; }

ThreadPoolStats ThreadPool::Stats() const {
  ThreadPoolStats stats;
  const size_t count = workers_.size();
  stats.per_worker_tasks.reserve(count);
  stats.per_worker_busy_micros.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const int64_t tasks = counters_[i].tasks_run.load(std::memory_order_relaxed);
    const int64_t busy =
        counters_[i].busy_micros.load(std::memory_order_relaxed);
    stats.per_worker_tasks.push_back(tasks);
    stats.per_worker_busy_micros.push_back(busy);
    stats.tasks_run += tasks;
    stats.busy_micros += busy;
  }
  return stats;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  t_on_pool_worker = true;
  // Name the worker for trace exports so spans recorded from pool tasks
  // carry their real thread attribution in Perfetto.
  GlobalTracer().SetCurrentThreadName(
      "pool-worker-" + std::to_string(worker_index),
      /*preferred_tid=*/100 + static_cast<int>(worker_index));
  Counter* tasks_counter = GlobalMetrics().GetCounter("pool.tasks_run");
  Histogram* task_micros = GlobalMetrics().GetHistogram(
      "pool.task_micros", LatencyBucketsMicros());
  WorkerCounters& counters = counters_[worker_index];
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto start = std::chrono::steady_clock::now();
    {
      ScopedSpan span("pool.task", "pool");
      task();  // packaged_task: exceptions land in the future
    }
    const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    counters.tasks_run.fetch_add(1, std::memory_order_relaxed);
    counters.busy_micros.fetch_add(micros, std::memory_order_relaxed);
    tasks_counter->Increment();
    task_micros->Observe(micros);
  }
}

ThreadPool& SharedThreadPool() {
  static ThreadPool* pool = new ThreadPool(HardwareThreads());
  return *pool;
}

size_t ParallelChunks(size_t total, int num_threads) {
  return std::min(total, static_cast<size_t>(ResolveThreadCount(num_threads)));
}

void ParallelFor(size_t total, int num_threads,
                 const std::function<void(size_t, size_t, size_t)>& fn) {
  const size_t chunks = ParallelChunks(total, num_threads);
  if (chunks == 0) return;
  auto run_chunk = [&](size_t c) {
    fn(c, c * total / chunks, (c + 1) * total / chunks);
  };
  if (chunks == 1 || ThreadPool::OnWorkerThread()) {
    for (size_t c = 0; c < chunks; ++c) run_chunk(c);
    return;
  }

  // Dynamic chunk claiming: the caller and up to pool-size helpers race on
  // an atomic cursor. Which thread runs a chunk is nondeterministic; the
  // chunk boundaries (and hence any per-chunk accumulator a caller merges
  // in chunk order) are not.
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  auto drain = [&] {
    for (size_t c = next.fetch_add(1); c < chunks; c = next.fetch_add(1)) {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        run_chunk(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (error == nullptr) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  ThreadPool& pool = SharedThreadPool();
  const size_t helpers =
      std::min(chunks - 1, static_cast<size_t>(pool.size()));
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (size_t i = 0; i < helpers; ++i) futures.push_back(pool.Submit(drain));
  drain();
  for (std::future<void>& future : futures) future.get();
  if (error != nullptr) std::rethrow_exception(error);
}

size_t MorselCount(size_t total, size_t morsel_size) {
  if (total == 0 || morsel_size == 0) return 0;
  return (total + morsel_size - 1) / morsel_size;
}

void ParallelForMorsels(size_t total, size_t morsel_size, int num_threads,
                        const std::function<void(size_t, size_t, size_t)>& fn) {
  const size_t morsels = MorselCount(total, morsel_size);
  if (morsels == 0) return;
  auto run_morsel = [&](size_t m) {
    fn(m, m * morsel_size, std::min(total, (m + 1) * morsel_size));
  };
  const size_t threads =
      std::min(morsels, static_cast<size_t>(ResolveThreadCount(num_threads)));
  if (threads == 1 || ThreadPool::OnWorkerThread()) {
    for (size_t m = 0; m < morsels; ++m) run_morsel(m);
    return;
  }

  // Dynamic morsel claiming, same scheme as ParallelFor but with many more
  // work units than threads so that skewed morsels balance out.
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  auto drain = [&] {
    for (size_t m = next.fetch_add(1); m < morsels; m = next.fetch_add(1)) {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        run_morsel(m);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (error == nullptr) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  ThreadPool& pool = SharedThreadPool();
  const size_t helpers =
      std::min(threads - 1, static_cast<size_t>(pool.size()));
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (size_t i = 0; i < helpers; ++i) futures.push_back(pool.Submit(drain));
  drain();
  for (std::future<void>& future : futures) future.get();
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace minerule
