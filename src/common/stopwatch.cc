#include "common/stopwatch.h"

namespace minerule {

void Stopwatch::Restart() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

int64_t Stopwatch::ElapsedMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

}  // namespace minerule
