#ifndef MINERULE_COMMON_STRING_UTIL_H_
#define MINERULE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace minerule {

/// ASCII-only lowercase copy (SQL identifiers are case-insensitive ASCII).
std::string ToLower(std::string_view s);

/// ASCII-only uppercase copy.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Removes leading and trailing whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// True if `s` begins with `prefix` (case-insensitive).
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

}  // namespace minerule

#endif  // MINERULE_COMMON_STRING_UTIL_H_
