#ifndef MINERULE_COMMON_RANDOM_H_
#define MINERULE_COMMON_RANDOM_H_

#include <cstdint>

namespace minerule {

/// Deterministic, platform-independent pseudo-random generator
/// (xoshiro256** core). Used by the data generators and the sampling miner
/// so that every experiment is bit-reproducible across machines, unlike
/// std::mt19937 distributions whose outputs vary between standard libraries.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Uniform over the full 64-bit range.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Poisson-distributed value with the given mean (Knuth's method; the mean
  /// values used by the Quest generator are small).
  int NextPoisson(double mean);

  /// Exponentially distributed value with the given mean.
  double NextExponential(double mean);

 private:
  uint64_t state_[4];
};

}  // namespace minerule

#endif  // MINERULE_COMMON_RANDOM_H_
