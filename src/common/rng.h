#ifndef MINERULE_COMMON_RNG_H_
#define MINERULE_COMMON_RNG_H_

#include <cstdint>
#include <string_view>

#include "common/random.h"

namespace minerule {

/// Derives a child seed from a root seed and a purpose label. The label is
/// folded with FNV-1a and the result finalized with the SplitMix64 mixer,
/// so streams keyed by different purposes (or indexes) are statistically
/// independent while remaining bit-reproducible across platforms.
uint64_t DeriveStreamSeed(uint64_t root_seed, std::string_view purpose,
                          uint64_t index = 0);

/// A splittable source of deterministic `Random` streams. Each consumer
/// names its stream ("patterns", "transactions", "case", ...); drawing from
/// one stream never perturbs another, so adding a consumer — or running
/// consumers on different threads against their own streams — cannot shift
/// the values everyone else sees. This is what makes fuzz-corpus seeds
/// reproduce across platforms and thread counts.
///
/// Usage:
///   StreamRng root(seed);
///   Random patterns = root.Stream("patterns");
///   Random txn7 = root.Stream("transaction", 7);
///   StreamRng case3 = root.Split("case", 3);   // a nested seed domain
class StreamRng {
 public:
  explicit StreamRng(uint64_t root_seed) : root_seed_(root_seed) {}

  uint64_t root_seed() const { return root_seed_; }

  /// An independent generator for this (purpose, index) pair. Always
  /// returns the same sequence for the same root seed and key.
  Random Stream(std::string_view purpose, uint64_t index = 0) const {
    return Random(DeriveStreamSeed(root_seed_, purpose, index));
  }

  /// A nested seed domain: streams drawn from the split are independent of
  /// every stream drawn from this or any sibling split.
  StreamRng Split(std::string_view purpose, uint64_t index = 0) const {
    return StreamRng(DeriveStreamSeed(root_seed_, purpose, index));
  }

 private:
  uint64_t root_seed_;
};

}  // namespace minerule

#endif  // MINERULE_COMMON_RNG_H_
