#ifndef MINERULE_COMMON_JSON_H_
#define MINERULE_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace minerule {

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view s);

/// A minimal streaming JSON writer used by the observability layer
/// (MiningRunStats::ToJson, the bench --smoke emitters). Keys and values
/// must be alternated correctly by the caller inside objects; commas and
/// quoting are handled here. The writer never reorders or pretty-prints:
/// output is deterministic given the call sequence.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Writes an object key; must be followed by exactly one value.
  JsonWriter& Key(std::string_view name);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();

  std::string out_;
  /// Whether a comma is needed before the next element, per nesting level.
  std::vector<bool> need_comma_{false};
};

/// Validating JSON parser (structure only, no DOM). Returns OK iff `text`
/// is one complete JSON value. Used by the bench smoke checks to assert the
/// emitted traces round-trip through a parser.
Status ValidateJson(std::string_view text);

}  // namespace minerule

#endif  // MINERULE_COMMON_JSON_H_
