#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace minerule {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::MaybeComma() {
  if (need_comma_.back()) out_ += ',';
  need_comma_.back() = true;
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  need_comma_.back() = false;  // the value completes this element
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  // Keep the token a valid JSON number (snprintf %g never emits a lone '.').
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  return *this;
}

namespace {

/// Recursive-descent structural validator.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  Status Validate() {
    MR_RETURN_IF_ERROR(Value(0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status::ParseError("invalid JSON at offset " +
                              std::to_string(pos_) + ": " + message);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("expected '" + std::string(word) + "'");
    }
    pos_ += word.size();
    return Status::OK();
  }

  Status String() {
    if (!Consume('"')) return Error("expected string");
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Error("bad \\u escape");
            }
            ++pos_;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return Error("bad escape character");
        }
      }
    }
    return Error("unterminated string");
  }

  Status Number() {
    const size_t start = pos_;
    Consume('-');
    if (!Consume('0')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("expected digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("expected fraction digits");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("expected exponent digits");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start ? Status::OK() : Error("expected number");
  }

  Status Value(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      SkipSpace();
      if (Consume('}')) return Status::OK();
      while (true) {
        SkipSpace();
        MR_RETURN_IF_ERROR(String());
        SkipSpace();
        if (!Consume(':')) return Error("expected ':'");
        MR_RETURN_IF_ERROR(Value(depth + 1));
        SkipSpace();
        if (Consume('}')) return Status::OK();
        if (!Consume(',')) return Error("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      SkipSpace();
      if (Consume(']')) return Status::OK();
      while (true) {
        MR_RETURN_IF_ERROR(Value(depth + 1));
        SkipSpace();
        if (Consume(']')) return Status::OK();
        if (!Consume(',')) return Error("expected ',' or ']'");
      }
    }
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status ValidateJson(std::string_view text) {
  return JsonValidator(text).Validate();
}

}  // namespace minerule
