#ifndef MINERULE_COMMON_RESULT_H_
#define MINERULE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace minerule {

/// A value-or-error type in the style of absl::StatusOr / arrow::Result.
///
/// Invariant: exactly one of {value, error status} is held. Constructing a
/// Result from an OK status is a programming error and is converted to an
/// Internal error to keep the invariant without throwing.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs from an error status (implicit, so `return status;` works).
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Used by MR_ASSIGN_OR_RETURN after checking ok(); no assertion so the
  /// macro stays cheap in release builds.
  T&& value_unsafe() && { return std::move(*value_); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace minerule

#endif  // MINERULE_COMMON_RESULT_H_
