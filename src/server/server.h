#ifndef MINERULE_SERVER_SERVER_H_
#define MINERULE_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>

#include "engine/data_mining_system.h"
#include "relational/catalog.h"
#include "server/scheduler.h"

namespace minerule::server {

class Session;

/// Catalog-level concurrency control (DESIGN.md §15). The per-table
/// modification epochs (Table::version, used since PR 2 for cache
/// invalidation) generalize here to statement-level snapshot reads:
///
///   - Readers take the latch shared and pin the catalog epoch for the
///     whole statement; because no write-class statement can interleave,
///     the epoch observed at statement start equals the epoch at statement
///     end — the snapshot the session layer promises.
///   - Writers (DML, DDL, MINE RULE, anything touching a sequence)
///     serialize on the exclusive latch and bump the epoch exactly once
///     per committed statement.
///
/// The catalog epoch orders whole write statements the way table versions
/// order individual table mutations; a reader's pinned epoch therefore
/// names the exact database state its statement saw.
class SessionManager {
 public:
  SessionManager() = default;
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Shared latch + pinned epoch, released on destruction.
  class ReadPin {
   public:
    explicit ReadPin(SessionManager* manager)
        : lock_(manager->latch_), epoch_(manager->epoch()) {}
    uint64_t epoch() const { return epoch_; }

   private:
    std::shared_lock<std::shared_mutex> lock_;
    uint64_t epoch_;
  };

  /// Exclusive latch; Commit() bumps the epoch (call once, on success and
  /// failure alike — even a failed statement may have partially mutated
  /// the catalog, so its epoch must advance).
  class WriteLock {
   public:
    explicit WriteLock(SessionManager* manager)
        : manager_(manager), lock_(manager->latch_) {}
    uint64_t Commit() { return manager_->BumpEpoch(); }

   private:
    SessionManager* manager_;
    std::unique_lock<std::shared_mutex> lock_;
  };

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  uint64_t BumpEpoch() {
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  std::shared_mutex latch_;
  std::atomic<uint64_t> epoch_{0};
};

struct ServerOptions {
  /// Admission-control slots; <= 0 resolves as Scheduler does.
  int max_concurrent = 0;
  /// Seed options for every new session (a session may override its own
  /// copy afterwards). Sessions default to dropping encoded tables after
  /// each MINE RULE so concurrent runs leave no shared scratch state.
  mr::MiningOptions session_defaults;
};

/// The multi-session front end of the tightly-coupled architecture
/// (DESIGN.md §15): many clients, one catalog, one shared worker pool.
/// Connect() hands out in-process sessions — the testable core the socket
/// front end (server/socket_server.h) is a thin line protocol over.
class Server {
 public:
  explicit Server(Catalog* catalog, ServerOptions options = {});

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens a new session. Sessions are independent: each holds its own
  /// engine state (options, host variables, statistics, preprocess cache)
  /// over the shared catalog, and may be driven from its own thread.
  /// Sessions must not outlive the server.
  std::unique_ptr<Session> Connect(std::string name = "");

  Catalog* catalog() { return catalog_; }
  SessionManager* session_manager() { return &session_manager_; }
  Scheduler* scheduler() { return &scheduler_; }
  const ServerOptions& options() const { return options_; }

  /// Sessions ever opened (session ids are 1-based and dense).
  int64_t sessions_opened() const {
    return next_session_id_.load(std::memory_order_relaxed) - 1;
  }

 private:
  friend class Session;
  void NoteSessionClosed();

  Catalog* catalog_;
  ServerOptions options_;
  SessionManager session_manager_;
  Scheduler scheduler_;
  std::atomic<int64_t> next_session_id_{1};
  std::atomic<int64_t> active_sessions_{0};
};

}  // namespace minerule::server

#endif  // MINERULE_SERVER_SERVER_H_
