#ifndef MINERULE_SERVER_SESSION_H_
#define MINERULE_SERVER_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "engine/data_mining_system.h"
#include "server/flight_recorder.h"
#include "server/scheduler.h"
#include "sql/engine.h"

namespace minerule::server {

class Server;

/// How the session layer classifies one statement before executing it
/// (DESIGN.md §15). Read-class statements run under the shared catalog
/// latch (snapshot reads); everything else serializes on the exclusive
/// latch.
enum class StatementClass {
  kRead,      // SELECT / EXPLAIN / ANALYZE without side effects
  kWrite,     // DML, DDL, NEXTVAL-touching SELECTs
  kMineRule,  // MINE RULE (write-class: creates/drops tables)
};

/// Classifies raw statement text. Conservative: anything that could mutate
/// shared state (including a SELECT mentioning NEXTVAL, which advances a
/// catalog sequence) is write-class; misclassifying a read as a write only
/// costs concurrency, never correctness.
StatementClass ClassifyStatement(std::string_view text);

/// "read" | "write" | "mine_rule" — the class names used by
/// mr_active_statements, the slow-query log and the flight recorder.
const char* StatementClassName(StatementClass cls);

/// The result of one session statement.
struct SessionResult {
  StatementClass statement_class = StatementClass::kRead;

  /// Filled for SQL statements.
  sql::QueryResult query;
  /// Filled for MINE RULE statements.
  mr::MiningRunStats mining;
  bool is_mine_rule() const {
    return statement_class == StatementClass::kMineRule;
  }

  /// Catalog epoch the statement observed. For snapshot reads start == end
  /// always (the pinned epoch); for writes end == start + 1 (this
  /// statement's own commit).
  uint64_t epoch_start = 0;
  uint64_t epoch_end = 0;

  /// Admission-control outcome for this statement.
  int64_t queue_wait_micros = 0;
  bool queued = false;

  /// mr_runs row id attributed to this statement (every session statement
  /// — SQL and MINE RULE, success and failure — appends exactly one row).
  int64_t run_id = 0;
};

/// One client connection to the Server: per-session options, host
/// variables, statistics and preprocess cache over the shared catalog.
/// A session executes one statement at a time; drive each session from a
/// single thread (different sessions may run concurrently, which is the
/// point).
class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Executes one statement (SQL or MINE RULE) with admission control and
  /// the catalog latch appropriate for its class. Every call appends one
  /// mr_runs row carrying this session's id and queue-wait attribution.
  Result<SessionResult> Execute(std::string_view statement);

  int64_t id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Per-session execution options, applied to both MINE RULE runs and
  /// (where applicable: threads, vectorized, cost_based, memory_limit)
  /// plain SQL. Mutating them never affects other sessions.
  mr::MiningOptions* options() { return &options_; }

  /// Last error this session saw; empty after a successful statement.
  const std::string& last_error() const { return last_error_; }

  /// Catalog epoch as of the latest completed statement.
  uint64_t last_epoch() const { return last_epoch_; }

  /// The session-private engine stack (testing and diagnostics).
  mr::DataMiningSystem* system() { return system_.get(); }

  /// This session's flight recorder (DESIGN.md §16): the ring of recent
  /// statement events, dumped as JSON when a statement fails.
  FlightRecorder* flight_recorder() { return &flight_recorder_; }

  /// Execution-time threshold (queue wait excluded) above which a
  /// statement is captured into mr_slow_queries; <= 0 disables capture.
  /// Seeded from MINERULE_SLOW_QUERY_MICROS (default 100ms); the socket
  /// front end exposes it as `\set slow_query_micros N`.
  int64_t slow_query_micros() const { return slow_query_micros_; }
  void set_slow_query_micros(int64_t micros) { slow_query_micros_ = micros; }

 private:
  friend class Server;
  Session(Server* server, int64_t id, std::string name);

  /// Runs the statement under the already-acquired latch; fills `result`.
  Status ExecuteClassified(std::string_view statement, StatementClass cls,
                           SessionResult* result);

  Server* server_;
  int64_t id_;
  std::string name_;
  mr::MiningOptions options_;
  std::unique_ptr<mr::DataMiningSystem> system_;
  std::string last_error_;
  uint64_t last_epoch_ = 0;
  FlightRecorder flight_recorder_;
  int64_t slow_query_micros_ = 0;  // seeded in the constructor
};

}  // namespace minerule::server

#endif  // MINERULE_SERVER_SESSION_H_
