#include "server/server.h"

#include "common/metrics.h"
#include "server/session.h"

namespace minerule::server {

namespace {

Gauge* ActiveSessionsGauge() {
  static Gauge* gauge = GlobalMetrics().GetGauge("server.sessions.active");
  return gauge;
}

}  // namespace

Server::Server(Catalog* catalog, ServerOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      scheduler_(options_.max_concurrent) {
  // Server sessions drop the encoded scratch tables after every MINE RULE
  // run: with many sessions sharing one catalog, per-run scratch state
  // must not leak into what other sessions (or the serial oracle) see.
  options_.session_defaults.keep_encoded_tables = false;
}

std::unique_ptr<Session> Server::Connect(std::string name) {
  const int64_t id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  if (name.empty()) name = "session-" + std::to_string(id);
  GlobalMetrics().GetCounter("server.sessions.opened")->Increment();
  ActiveSessionsGauge()->Set(
      active_sessions_.fetch_add(1, std::memory_order_relaxed) + 1);
  // Not make_unique: the constructor is private to this friend.
  return std::unique_ptr<Session>(new Session(this, id, std::move(name)));
}

void Server::NoteSessionClosed() {
  GlobalMetrics().GetCounter("server.sessions.closed")->Increment();
  ActiveSessionsGauge()->Set(
      active_sessions_.fetch_sub(1, std::memory_order_relaxed) - 1);
}

}  // namespace minerule::server
