#include "server/socket_server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/log.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "server/session.h"

namespace minerule::server {

namespace {

std::string CollapseNewlines(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

bool WriteAll(int fd, const std::string& data) {
  static Counter* bytes_written =
      GlobalMetrics().GetCounter("server.socket.bytes_written");
  size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a client that disconnected mid-response must yield
    // EPIPE here, not kill the whole server with SIGPIPE.
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  bytes_written->Add(static_cast<int64_t>(data.size()));
  return true;
}

std::string TrimRight(std::string s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.pop_back();
  }
  return s;
}

/// Strict base-10 integer parse: the whole token must be a number.
bool ParseInt64Strict(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  *out = static_cast<int64_t>(parsed);
  return true;
}

}  // namespace

std::string ApplySetCommand(Session* session, const std::string& line) {
  std::vector<std::string> parts;
  std::string word;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!word.empty()) parts.push_back(std::move(word));
      word.clear();
    } else {
      word.push_back(c);
    }
  }
  if (!word.empty()) parts.push_back(std::move(word));
  if (parts.size() != 3) return "ERR usage: \\set NAME VALUE";
  const std::string name = ToLower(parts[1]);
  const std::string& value = parts[2];
  mr::MiningOptions* options = session->options();
  auto on_off = [&](bool* flag) -> std::string {
    if (value == "on") {
      *flag = true;
    } else if (value == "off") {
      *flag = false;
    } else {
      return "ERR expected on|off for \\set " + name + ", got '" + value +
             "'";
    }
    return "OK";
  };
  auto integer = [&](auto apply) -> std::string {
    int64_t parsed = 0;
    if (!ParseInt64Strict(value, &parsed)) {
      return "ERR expected an integer for \\set " + name + ", got '" +
             value + "'";
    }
    apply(parsed);
    return "OK";
  };
  if (name == "vectorized") return on_off(&options->vectorized_sql);
  if (name == "cost_based") return on_off(&options->cost_based_sql);
  if (name == "threads") {
    return integer(
        [&](int64_t v) { options->num_threads = static_cast<int>(v); });
  }
  if (name == "memory_limit") {
    return integer([&](int64_t v) { options->memory_limit = v; });
  }
  if (name == "slow_query_micros") {
    return integer([&](int64_t v) { session->set_slow_query_micros(v); });
  }
  return "ERR unknown option: " + name;
}

namespace {

std::string FormatResponse(const SessionResult& result) {
  std::string out = "OK rows=" +
                    std::to_string(result.query.rows.size()) +
                    " affected=" +
                    std::to_string(result.query.affected_rows) + " rules=" +
                    std::to_string(result.is_mine_rule()
                                       ? result.mining.output.num_rules
                                       : 0) +
                    " run=" + std::to_string(result.run_id) +
                    " epoch=" + std::to_string(result.epoch_end) + "\n";
  if (!result.query.rows.empty()) {
    for (size_t i = 0; i < result.query.schema.num_columns(); ++i) {
      if (i > 0) out += '\t';
      out += result.query.schema.column(i).name;
    }
    out += '\n';
    for (const Row& row : result.query.rows) {
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) out += '\t';
        out += row[i].ToString();
      }
      out += '\n';
    }
  }
  out += ".\n";
  return out;
}

}  // namespace

SocketServer::SocketServer(Server* server, std::string socket_path)
    : server_(server), socket_path_(std::move(socket_path)) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket: " + std::string(std::strerror(errno)));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path_);
  }
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(socket_path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::Internal("bind " + socket_path_ + ": " +
                            std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::Internal("listen: " + std::string(std::strerror(errno)));
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SocketServer::AcceptLoop() {
  static Counter* connections =
      GlobalMetrics().GetCounter("server.socket.connections");
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down
    }
    connections->Increment();
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back(
        [this, fd] { ServeConnection(fd); });
  }
}

void SocketServer::ServeConnection(int fd) {
  static Counter* statements =
      GlobalMetrics().GetCounter("server.socket.statements");
  static Counter* bytes_read =
      GlobalMetrics().GetCounter("server.socket.bytes_read");
  static Counter* oversized =
      GlobalMetrics().GetCounter("server.socket.oversized_statements");

  std::unique_ptr<Session> session = server_->Connect();
  GlobalLog().Log(LogLevel::kInfo, "server.socket", "connection opened",
                  {{"fd", fd}, {"session", session->id()}});
  std::string pending;    // raw bytes not yet split into lines
  std::string statement;  // lines accumulated toward the next ';'
  char buf[4096];
  bool open = true;
  bool rejected_oversized = false;
  while (open) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    bytes_read->Add(n);
    pending.append(buf, static_cast<size_t>(n));

    // Bounded input (DESIGN.md §16): everything buffered toward the next
    // statement — raw bytes plus accumulated lines — must fit the cap. A
    // violating connection is closed: mid-statement there is no stream
    // position at which the protocol could resynchronize.
    if (pending.size() + statement.size() > kMaxStatementBytes) {
      oversized->Increment();
      rejected_oversized = true;
      GlobalLog().Log(LogLevel::kWarn, "server.socket",
                      "oversized statement rejected",
                      {{"session", session->id()},
                       {"buffered", static_cast<int64_t>(pending.size() +
                                                         statement.size())},
                       {"limit", static_cast<int64_t>(kMaxStatementBytes)}});
      WriteAll(fd, "ERR statement too large (limit " +
                       std::to_string(kMaxStatementBytes) +
                       " bytes); closing connection\n.\n");
      break;
    }

    size_t newline;
    while (open && (newline = pending.find('\n')) != std::string::npos) {
      std::string line = pending.substr(0, newline);
      pending.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();

      const size_t first =
          line.find_first_not_of(" \t");
      if (first != std::string::npos && line[first] == '\\') {
        const std::string command = TrimRight(line.substr(first));
        if (command == "\\quit") {
          WriteAll(fd, "OK bye\n.\n");
          open = false;
          break;
        }
        if (command == "\\metrics") {
          // Prometheus text exposition (DESIGN.md §16). No sample line can
          // collide with the '.' response terminator.
          WriteAll(fd, GlobalMetrics().FormatPrometheus() + ".\n");
        } else if (command.rfind("\\set", 0) == 0) {
          WriteAll(fd, ApplySetCommand(session.get(), command) + "\n.\n");
        } else {
          WriteAll(fd, "ERR unknown command: " + command + "\n.\n");
        }
        continue;
      }

      statement += line;
      statement += '\n';
      const std::string trimmed = TrimRight(statement);
      if (trimmed.empty()) {
        statement.clear();
        continue;
      }
      if (trimmed.back() != ';') continue;

      // Strip the terminator and execute.
      statements->Increment();
      const std::string text = trimmed.substr(0, trimmed.size() - 1);
      statement.clear();
      Result<SessionResult> result = session->Execute(text);
      if (result.ok()) {
        if (!WriteAll(fd, FormatResponse(*result))) open = false;
      } else {
        if (!WriteAll(fd, "ERR " +
                              CollapseNewlines(result.status().ToString()) +
                              "\n.\n")) {
          open = false;
        }
      }
    }
  }

  // A connection that died with a statement half-assembled (or was cut off
  // for an oversized statement) ended uncleanly: dump the session's flight
  // recorder so the operator sees what led up to it (DESIGN.md §16).
  const bool unclean =
      rejected_oversized || !TrimRight(statement + pending).empty();
  if (unclean && GlobalLog().Enabled(LogLevel::kWarn)) {
    GlobalLog().Log(LogLevel::kWarn, "server.socket",
                    "connection ended mid-statement",
                    {{"session", session->id()},
                     {"flight", session->flight_recorder()->DumpJson(
                                    session->id())}});
  }
  GlobalLog().Log(LogLevel::kInfo, "server.socket", "connection closed",
                  {{"fd", fd},
                   {"session", session->id()},
                   {"statements", session->flight_recorder()->recorded()}});
  ::close(fd);
}

void SocketServer::Stop() {
  if (stopping_.exchange(true)) {
    return;  // already stopped
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<int> fds;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    fds.swap(connection_fds_);
    threads.swap(connection_threads_);
  }
  for (int fd : fds) ::shutdown(fd, SHUT_RDWR);
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  ::unlink(socket_path_.c_str());
  listen_fd_ = -1;
}

}  // namespace minerule::server
