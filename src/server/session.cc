#include "server/session.h"

#include <algorithm>
#include <cctype>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "minerule/parser.h"
#include "server/server.h"
#include "sql/system_tables.h"

namespace minerule::server {

namespace {

/// First keyword of the statement, uppercased.
std::string FirstKeyword(std::string_view text) {
  size_t i = 0;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  size_t j = i;
  while (j < text.size() &&
         (std::isalpha(static_cast<unsigned char>(text[j])) ||
          text[j] == '_')) {
    ++j;
  }
  return ToUpper(text.substr(i, j - i));
}

bool MentionsNextval(std::string_view text) {
  const std::string upper = ToUpper(text);
  return upper.find("NEXTVAL") != std::string::npos;
}

/// Releases the scheduler slot on scope exit.
struct SlotGuard {
  explicit SlotGuard(Scheduler* scheduler) : scheduler(scheduler) {}
  ~SlotGuard() { scheduler->Release(); }
  Scheduler* scheduler;
};

}  // namespace

StatementClass ClassifyStatement(std::string_view text) {
  const std::string keyword = FirstKeyword(text);
  if (keyword == "MINE") return StatementClass::kMineRule;
  if (keyword == "SELECT" || keyword == "EXPLAIN" || keyword == "ANALYZE") {
    // NEXTVAL advances a shared catalog sequence even inside a SELECT, so
    // it must serialize with other writers. The substring test is
    // conservative (a string literal saying "nextval" also matches), which
    // only costs concurrency, never correctness.
    return MentionsNextval(text) ? StatementClass::kWrite
                                 : StatementClass::kRead;
  }
  return StatementClass::kWrite;
}

Session::Session(Server* server, int64_t id, std::string name)
    : server_(server),
      id_(id),
      name_(std::move(name)),
      options_(server->options().session_defaults),
      system_(std::make_unique<mr::DataMiningSystem>(server->catalog())) {}

Session::~Session() { server_->NoteSessionClosed(); }

Result<SessionResult> Session::Execute(std::string_view statement) {
  static Counter* statements =
      GlobalMetrics().GetCounter("server.statements");
  static Counter* errors =
      GlobalMetrics().GetCounter("server.statement_errors");
  static Counter* mine_rule_runs =
      GlobalMetrics().GetCounter("server.mine_rule_runs");
  static Histogram* micros = GlobalMetrics().GetHistogram(
      "server.statement_micros", LatencyBucketsMicros());

  SessionResult result;
  result.statement_class = ClassifyStatement(statement);
  statements->Increment();
  if (result.is_mine_rule()) mine_rule_runs->Increment();

  // Admission first, latch second: a queued statement holds nothing, so
  // admitted statements always make progress.
  Stopwatch watch;
  const Admission admission = server_->scheduler()->Admit();
  SlotGuard slot(server_->scheduler());
  result.queue_wait_micros = admission.queue_wait_micros;
  result.queued = admission.queued;

  // Per-statement attribution for the mr_runs rows this statement appends.
  system_->set_run_attribution({id_, admission.queue_wait_micros,
                                admission.Decision()});

  Status status;
  SessionManager* manager = server_->session_manager();
  if (result.statement_class == StatementClass::kRead) {
    SessionManager::ReadPin pin(manager);
    result.epoch_start = pin.epoch();
    status = ExecuteClassified(statement, result.statement_class, &result);
    result.epoch_end = manager->epoch();
  } else {
    SessionManager::WriteLock lock(manager);
    result.epoch_start = manager->epoch();
    status = ExecuteClassified(statement, result.statement_class, &result);
    result.epoch_end = lock.Commit();
  }
  last_epoch_ = result.epoch_end;
  micros->Observe(watch.ElapsedMicros());

  if (!status.ok()) {
    errors->Increment();
    last_error_ = status.ToString();
    return status;
  }
  last_error_.clear();
  return result;
}

Status Session::ExecuteClassified(std::string_view statement,
                                  StatementClass cls, SessionResult* result) {
  if (cls == StatementClass::kMineRule) {
    // Parse here so even a statement the MINE RULE parser rejects gets its
    // one mr_runs row (DataMiningSystem only records parsed statements).
    Result<mr::MineRuleStatement> parsed = mr::ParseMineRule(statement);
    if (!parsed.ok()) {
      sql::RunRecord run;
      run.statement = std::string(statement);
      run.status = parsed.status().ToString();
      run.threads = ResolveThreadCount(options_.num_threads);
      run.session_id = id_;
      run.queue_wait_micros = result->queue_wait_micros;
      run.admission = result->queued ? "queued" : "immediate";
      result->run_id = sql::GlobalObservability().RecordRun(std::move(run));
      return parsed.status();
    }
    Result<mr::MiningRunStats> stats =
        system_->ExecuteStatement(*parsed, options_);
    MR_RETURN_IF_ERROR(stats.status());
    result->run_id = stats->run_id;
    result->mining = std::move(*stats);
    return Status::OK();
  }

  // Plain SQL: apply the session's engine-level options, execute, and
  // append this statement's own mr_runs row.
  sql::SqlEngine* engine = system_->sql_engine();
  engine->set_num_threads(options_.num_threads);
  engine->set_vectorized(options_.vectorized_sql);
  engine->set_cost_based(options_.cost_based_sql);
  if (options_.memory_limit != mr::MiningOptions::kMemoryLimitInherit) {
    engine->set_memory_limit(options_.memory_limit);
  }

  Stopwatch watch;
  Result<sql::QueryResult> query = system_->ExecuteSql(statement);

  sql::RunRecord run;
  run.statement = std::string(statement);
  run.threads = ResolveThreadCount(options_.num_threads);
  run.total_micros = watch.ElapsedMicros();
  run.session_id = id_;
  run.queue_wait_micros = result->queue_wait_micros;
  run.admission = result->queued ? "queued" : "immediate";
  if (query.ok()) {
    run.rules = query->rows.empty()
                    ? query->affected_rows
                    : static_cast<int64_t>(query->rows.size());
  } else {
    run.status = query.status().ToString();
  }
  result->run_id = sql::GlobalObservability().RecordRun(std::move(run));

  MR_RETURN_IF_ERROR(query.status());
  result->query = std::move(*query);
  return Status::OK();
}

}  // namespace minerule::server
