#include "server/session.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/log.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "minerule/parser.h"
#include "server/server.h"
#include "sql/statement_registry.h"
#include "sql/system_tables.h"

namespace minerule::server {

namespace {

/// First keyword of the statement, uppercased.
std::string FirstKeyword(std::string_view text) {
  size_t i = 0;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  size_t j = i;
  while (j < text.size() &&
         (std::isalpha(static_cast<unsigned char>(text[j])) ||
          text[j] == '_')) {
    ++j;
  }
  return ToUpper(text.substr(i, j - i));
}

bool MentionsNextval(std::string_view text) {
  const std::string upper = ToUpper(text);
  return upper.find("NEXTVAL") != std::string::npos;
}

/// Releases the scheduler slot on scope exit.
struct SlotGuard {
  explicit SlotGuard(Scheduler* scheduler) : scheduler(scheduler) {}
  ~SlotGuard() { scheduler->Release(); }
  Scheduler* scheduler;
};

/// Slow-query threshold seeded from MINERULE_SLOW_QUERY_MICROS; parsed
/// once. Default 100ms; 0 or a non-number disables capture.
int64_t DefaultSlowQueryMicros() {
  static const int64_t micros = [] {
    const char* env = std::getenv("MINERULE_SLOW_QUERY_MICROS");
    if (env == nullptr || *env == '\0') return int64_t{100'000};
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0') return int64_t{0};
    return static_cast<int64_t>(parsed);
  }();
  return micros;
}

/// Compresses an operator profile for the mr_slow_queries operators column:
/// "name:rows name:rows ..." in plan pre-order, capped at 8 entries.
std::string CompressProfile(const std::vector<sql::OperatorProfile>& ops) {
  std::string out;
  size_t emitted = 0;
  for (const sql::OperatorProfile& op : ops) {
    if (emitted == 8) {
      out += " ...";
      break;
    }
    if (!out.empty()) out += ' ';
    out += op.name + ":" + std::to_string(op.rows);
    ++emitted;
  }
  return out;
}

/// Sums the est_bytes operator counters — the same working-set estimate
/// MiningRunStats::peak_bytes uses for generated queries.
int64_t ProfileEstBytes(const std::vector<sql::OperatorProfile>& ops) {
  int64_t total = 0;
  for (const sql::OperatorProfile& op : ops) {
    for (const auto& [key, value] : op.counters) {
      if (key == "est_bytes") total += value;
    }
  }
  return total;
}

/// Compresses a MINE RULE run into its phase timings, the closest analogue
/// of an operator profile at statement granularity.
std::string CompressMiningPhases(const mr::MiningRunStats& stats) {
  auto phase = [](const char* name, double seconds) {
    return std::string(name) + ":" +
           std::to_string(static_cast<int64_t>(seconds * 1e6)) + "us";
  };
  return phase("translate", stats.translate_seconds) + " " +
         phase("preprocess", stats.preprocess_seconds) + " " +
         phase("core", stats.core_seconds) + " " +
         phase("postprocess", stats.postprocess_seconds);
}

}  // namespace

StatementClass ClassifyStatement(std::string_view text) {
  const std::string keyword = FirstKeyword(text);
  if (keyword == "MINE") return StatementClass::kMineRule;
  if (keyword == "SELECT" || keyword == "EXPLAIN" || keyword == "ANALYZE") {
    // NEXTVAL advances a shared catalog sequence even inside a SELECT, so
    // it must serialize with other writers. The substring test is
    // conservative (a string literal saying "nextval" also matches), which
    // only costs concurrency, never correctness.
    return MentionsNextval(text) ? StatementClass::kWrite
                                 : StatementClass::kRead;
  }
  return StatementClass::kWrite;
}

const char* StatementClassName(StatementClass cls) {
  switch (cls) {
    case StatementClass::kRead:
      return "read";
    case StatementClass::kWrite:
      return "write";
    case StatementClass::kMineRule:
      return "mine_rule";
  }
  return "write";
}

Session::Session(Server* server, int64_t id, std::string name)
    : server_(server),
      id_(id),
      name_(std::move(name)),
      options_(server->options().session_defaults),
      system_(std::make_unique<mr::DataMiningSystem>(server->catalog())),
      slow_query_micros_(DefaultSlowQueryMicros()) {
  sql::GlobalStatementRegistry().RegisterSession(id_, name_);
  GlobalLog().Log(LogLevel::kDebug, "server.session", "session opened",
                  {{"session", id_}, {"name", name_}});
}

Session::~Session() {
  sql::GlobalStatementRegistry().UnregisterSession(id_);
  GlobalLog().Log(LogLevel::kDebug, "server.session", "session closed",
                  {{"session", id_},
                   {"statements", flight_recorder_.recorded()}});
  server_->NoteSessionClosed();
}

Result<SessionResult> Session::Execute(std::string_view statement) {
  static Counter* statements =
      GlobalMetrics().GetCounter("server.statements");
  static Counter* errors =
      GlobalMetrics().GetCounter("server.statement_errors");
  static Counter* mine_rule_runs =
      GlobalMetrics().GetCounter("server.mine_rule_runs");
  static Counter* slow_queries =
      GlobalMetrics().GetCounter("server.slow_queries");
  static Histogram* micros = GlobalMetrics().GetHistogram(
      "server.statement_micros", LatencyBucketsMicros());

  SessionResult result;
  result.statement_class = ClassifyStatement(statement);
  const char* class_name = StatementClassName(result.statement_class);
  statements->Increment();
  if (result.is_mine_rule()) mine_rule_runs->Increment();

  // Lifecycle registry (DESIGN.md §16): the statement is visible in
  // mr_active_statements from here until EndStatement, in whatever state
  // the transitions below have reached.
  sql::StatementRegistry& registry = sql::GlobalStatementRegistry();
  const int64_t statement_id =
      registry.BeginStatement(id_, std::string(statement), class_name);

  // Admission first, latch second: a queued statement holds nothing, so
  // admitted statements always make progress.
  Stopwatch watch;
  const Admission admission = server_->scheduler()->Admit();
  SlotGuard slot(server_->scheduler());
  result.queue_wait_micros = admission.queue_wait_micros;
  result.queued = admission.queued;
  registry.MarkAdmitted(statement_id, admission.queue_wait_micros);

  // Per-statement attribution for the mr_runs rows this statement appends.
  system_->set_run_attribution({id_, admission.queue_wait_micros,
                                admission.Decision()});

  Status status;
  SessionManager* manager = server_->session_manager();
  if (result.statement_class == StatementClass::kRead) {
    SessionManager::ReadPin pin(manager);
    result.epoch_start = pin.epoch();
    registry.MarkExecuting(statement_id,
                           static_cast<int64_t>(pin.epoch()));
    status = ExecuteClassified(statement, result.statement_class, &result);
    result.epoch_end = manager->epoch();
  } else {
    SessionManager::WriteLock lock(manager);
    result.epoch_start = manager->epoch();
    registry.MarkExecuting(statement_id,
                           static_cast<int64_t>(result.epoch_start));
    status = ExecuteClassified(statement, result.statement_class, &result);
    result.epoch_end = lock.Commit();
  }
  last_epoch_ = result.epoch_end;
  const int64_t total_micros = watch.ElapsedMicros();
  micros->Observe(total_micros);

  const std::string error = status.ok() ? "" : status.ToString();
  registry.EndStatement(statement_id, status.ok(), error);

  // Slow-query log: execution time (queue wait excluded) against the
  // session's threshold.
  const int64_t exec_micros = total_micros - result.queue_wait_micros;
  if (slow_query_micros_ > 0 && exec_micros >= slow_query_micros_) {
    slow_queries->Increment();
    sql::SlowQueryRecord slow;
    slow.statement_id = statement_id;
    slow.session_id = id_;
    slow.statement = std::string(statement);
    slow.statement_class = class_name;
    slow.total_micros = exec_micros;
    slow.queue_wait_micros = result.queue_wait_micros;
    slow.threshold_micros = slow_query_micros_;
    if (status.ok()) {
      if (result.is_mine_rule()) {
        slow.rows = result.mining.output.num_rules;
        slow.peak_bytes = result.mining.peak_bytes;
        slow.operators = CompressMiningPhases(result.mining);
      } else {
        slow.rows = result.query.rows.empty()
                        ? result.query.affected_rows
                        : static_cast<int64_t>(result.query.rows.size());
        slow.peak_bytes = ProfileEstBytes(result.query.profile);
        slow.operators = CompressProfile(result.query.profile);
      }
    } else {
      slow.status = error;
    }
    registry.RecordSlowQuery(std::move(slow));
    GlobalLog().Log(LogLevel::kWarn, "server.session", "slow statement",
                    {{"session", id_},
                     {"statement_id", statement_id},
                     {"micros", exec_micros},
                     {"threshold", slow_query_micros_},
                     {"class", class_name}});
  }

  // Flight recorder: every statement, success and failure alike.
  FlightEvent event;
  event.statement_id = statement_id;
  event.statement = std::string(statement);
  event.statement_class = class_name;
  event.status = status.ok() ? "ok" : error;
  event.total_micros = total_micros;
  event.queue_wait_micros = result.queue_wait_micros;
  event.epoch_end = result.epoch_end;
  event.run_id = result.run_id;
  flight_recorder_.Record(std::move(event));

  if (!status.ok()) {
    errors->Increment();
    last_error_ = error;
    // Dump the lead-up with the failure (DESIGN.md §16): the ring shows
    // what this session ran before the statement that broke.
    if (GlobalLog().Enabled(LogLevel::kWarn)) {
      GlobalLog().Log(LogLevel::kWarn, "server.session", "statement failed",
                      {{"session", id_},
                       {"statement_id", statement_id},
                       {"error", error},
                       {"flight", flight_recorder_.DumpJson(id_)}});
    }
    return status;
  }
  last_error_.clear();
  return result;
}

Status Session::ExecuteClassified(std::string_view statement,
                                  StatementClass cls, SessionResult* result) {
  if (cls == StatementClass::kMineRule) {
    // Parse here so even a statement the MINE RULE parser rejects gets its
    // one mr_runs row (DataMiningSystem only records parsed statements).
    Result<mr::MineRuleStatement> parsed = mr::ParseMineRule(statement);
    if (!parsed.ok()) {
      sql::RunRecord run;
      run.statement = std::string(statement);
      run.status = parsed.status().ToString();
      run.threads = ResolveThreadCount(options_.num_threads);
      run.session_id = id_;
      run.queue_wait_micros = result->queue_wait_micros;
      run.admission = result->queued ? "queued" : "immediate";
      result->run_id = sql::GlobalObservability().RecordRun(std::move(run));
      return parsed.status();
    }
    Result<mr::MiningRunStats> stats =
        system_->ExecuteStatement(*parsed, options_);
    MR_RETURN_IF_ERROR(stats.status());
    result->run_id = stats->run_id;
    result->mining = std::move(*stats);
    return Status::OK();
  }

  // Plain SQL: apply the session's engine-level options, execute, and
  // append this statement's own mr_runs row.
  sql::SqlEngine* engine = system_->sql_engine();
  engine->set_num_threads(options_.num_threads);
  engine->set_vectorized(options_.vectorized_sql);
  engine->set_cost_based(options_.cost_based_sql);
  if (options_.memory_limit != mr::MiningOptions::kMemoryLimitInherit) {
    engine->set_memory_limit(options_.memory_limit);
  }

  Stopwatch watch;
  Result<sql::QueryResult> query = system_->ExecuteSql(statement);

  sql::RunRecord run;
  run.statement = std::string(statement);
  run.threads = ResolveThreadCount(options_.num_threads);
  run.total_micros = watch.ElapsedMicros();
  run.session_id = id_;
  run.queue_wait_micros = result->queue_wait_micros;
  run.admission = result->queued ? "queued" : "immediate";
  if (query.ok()) {
    run.rules = query->rows.empty()
                    ? query->affected_rows
                    : static_cast<int64_t>(query->rows.size());
  } else {
    run.status = query.status().ToString();
  }
  result->run_id = sql::GlobalObservability().RecordRun(std::move(run));

  MR_RETURN_IF_ERROR(query.status());
  result->query = std::move(*query);
  return Status::OK();
}

}  // namespace minerule::server
