#ifndef MINERULE_SERVER_FLIGHT_RECORDER_H_
#define MINERULE_SERVER_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace minerule::server {

/// One completed statement, as remembered by a session's flight recorder.
struct FlightEvent {
  int64_t statement_id = 0;  // StatementRegistry id
  std::string statement;     // truncated to kMaxStatementBytes
  std::string statement_class;  // "read" | "write" | "mine_rule"
  std::string status = "ok";    // "ok" or the error message
  int64_t total_micros = 0;
  int64_t queue_wait_micros = 0;
  uint64_t epoch_end = 0;
  int64_t run_id = 0;  // mr_runs attribution, 0 when none was recorded
};

/// Per-session flight recorder (DESIGN.md §16): a fixed-size ring of the
/// most recent statement events, cheap enough to record always. When a
/// statement fails — or the socket front end sees a connection die with a
/// statement half-assembled — the ring is dumped as one JSON object through
/// the structured log, so the operator gets the lead-up, not just the
/// failure. Thread-safe, though a session drives it from one thread; the
/// dump may be taken by another (the socket server at teardown).
class FlightRecorder {
 public:
  /// Events kept; older events are evicted in FIFO order.
  static constexpr size_t kCapacity = 32;
  /// Statement text kept per event (dumps stay bounded).
  static constexpr size_t kMaxStatementBytes = 256;

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event, truncating its statement text.
  void Record(FlightEvent event);

  /// The ring, oldest first.
  std::vector<FlightEvent> Events() const;

  /// Events currently in the ring (<= kCapacity).
  size_t size() const;

  /// Events ever recorded, including ones evicted from the ring.
  int64_t recorded() const;

  /// Serializes the ring as one JSON object:
  ///   {"session": id, "events": [{"statement_id": ..., ...}, ...]}
  /// The output round-trips through ValidateJson (pinned by tests).
  std::string DumpJson(int64_t session_id) const;

 private:
  mutable std::mutex mutex_;
  std::deque<FlightEvent> events_;
  int64_t recorded_ = 0;
};

}  // namespace minerule::server

#endif  // MINERULE_SERVER_FLIGHT_RECORDER_H_
