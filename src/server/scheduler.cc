#include "server/scheduler.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace minerule::server {

namespace {

int ResolveSlots(int requested) {
  if (requested > 0) return requested;
  return std::max(2, HardwareThreads() / 2);
}

}  // namespace

Scheduler::Scheduler(int max_concurrent)
    : max_concurrent_(ResolveSlots(max_concurrent)) {}

namespace {

// Live scheduler occupancy (DESIGN.md §16): current value plus the peak
// the _peak gauge variant exposes through FormatPrometheus.
Gauge* ActiveSlotsGauge() {
  static Gauge* gauge = GlobalMetrics().GetGauge("server.scheduler.active");
  return gauge;
}

Gauge* WaitingGauge() {
  static Gauge* gauge = GlobalMetrics().GetGauge("server.scheduler.waiting");
  return gauge;
}

}  // namespace

Admission Scheduler::Admit() {
  static Counter* immediate =
      GlobalMetrics().GetCounter("server.scheduler.admitted_immediate");
  static Counter* queued =
      GlobalMetrics().GetCounter("server.scheduler.admitted_queued");
  static Histogram* wait = GlobalMetrics().GetHistogram(
      "server.scheduler.queue_wait_micros", LatencyBucketsMicros());

  Admission admission;
  std::unique_lock<std::mutex> lock(mutex_);
  const int64_t ticket = next_ticket_++;
  if (ticket >= completed_ + max_concurrent_) {
    admission.queued = true;
    Stopwatch watch;
    ++waiting_;
    WaitingGauge()->Set(waiting_);
    slot_free_.wait(lock,
                    [&] { return ticket < completed_ + max_concurrent_; });
    --waiting_;
    WaitingGauge()->Set(waiting_);
    admission.queue_wait_micros = watch.ElapsedMicros();
  }
  ++active_;
  ActiveSlotsGauge()->Set(active_);
  lock.unlock();

  wait->Observe(admission.queue_wait_micros);
  (admission.queued ? queued : immediate)->Increment();
  return admission;
}

void Scheduler::Release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++completed_;
    --active_;
    ActiveSlotsGauge()->Set(active_);
  }
  slot_free_.notify_all();
}

int Scheduler::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

int Scheduler::waiting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return waiting_;
}

}  // namespace minerule::server
