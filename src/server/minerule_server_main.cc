// minerule_server: the line-protocol front end over a local socket
// (DESIGN.md §15).
//
//   minerule_server --socket=PATH [--max-concurrent=N]
//                   [--metrics-out=FILE] [--log-level=LEVEL] [--log-json]
//       Serve the paper's demo catalog at PATH until SIGINT/SIGTERM.
//       Talk to it with e.g.:  nc -U PATH
//       --metrics-out rewrites FILE about once a second with the Prometheus
//       text exposition of the metrics registry (node_exporter
//       textfile-collector style; see README "Operating the server").
//
//   minerule_server --smoke [--clients=N]
//       Self-contained smoke test: start a server on a temp socket, run N
//       concurrent clients through a CREATE/INSERT/SELECT/MINE RULE
//       conversation each, verify one mr_runs row per statement with
//       per-session attribution, verify \metrics emits parseable
//       Prometheus text and a deliberately slow statement lands in
//       mr_slow_queries, shut down cleanly and print "SERVER SMOKE OK".

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "datagen/paper_example.h"
#include "server/server.h"
#include "server/session.h"
#include "server/socket_server.h"
#include "sql/statement_registry.h"
#include "sql/system_tables.h"

namespace {

using namespace minerule;

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Fail(const std::string& message) {
  std::cerr << "minerule_server: " << message << "\n";
  return 1;
}

/// A minimal blocking client for the smoke test: connect, send statements,
/// read '.'-terminated responses.
class SmokeClient {
 public:
  explicit SmokeClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~SmokeClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }

  /// Sends one raw protocol line (a '\'-command, or a statement carrying
  /// its own ';') and returns the full response body — everything before
  /// the '.' terminator line. Empty on transport failure.
  std::string SendLine(const std::string& line) {
    const std::string request = line + "\n";
    size_t off = 0;
    while (off < request.size()) {
      const ssize_t n = ::send(fd_, request.data() + off,
                               request.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return "";
      }
      off += static_cast<size_t>(n);
    }
    // Read until the '.' terminator line.
    while (buffer_.find("\n.\n") == std::string::npos &&
           buffer_.rfind(".\n", 0) != 0) {
      char chunk[1024];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    const size_t end = buffer_.find("\n.\n");
    std::string response;
    if (end == std::string::npos) {
      buffer_.erase(0, 2);  // response was just ".\n"
    } else {
      response = buffer_.substr(0, end);
      buffer_.erase(0, end + 3);
    }
    return response;
  }

  /// Sends one statement (terminator appended) and returns the first
  /// response line ("OK ..." / "ERR ...."); empty on transport failure.
  std::string Execute(const std::string& statement) {
    const std::string response = SendLine(statement + ";");
    const size_t newline = response.find('\n');
    return newline == std::string::npos ? response
                                        : response.substr(0, newline);
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// One smoke client's conversation; returns the number of failed
/// statements.
int RunSmokeClient(const std::string& path, int client_index) {
  SmokeClient client(path);
  if (!client.ok()) return 4;
  const std::string k = std::to_string(client_index);
  const std::vector<std::string> statements = {
      "CREATE TABLE smoke_t" + k + " (x INTEGER)",
      "INSERT INTO smoke_t" + k + " VALUES (" + k + ")",
      "SELECT customer, item FROM Purchase",
      "MINE RULE smoke_rules_" + k +
          " AS\nSELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, "
          "SUPPORT, CONFIDENCE\nFROM Purchase\nGROUP BY customer\n"
          "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3",
  };
  int failures = 0;
  for (const std::string& statement : statements) {
    const std::string reply = client.Execute(statement);
    if (reply.rfind("OK", 0) != 0) {
      std::cerr << "client " << client_index << ": '"
                << statement.substr(0, 40) << "...' -> "
                << (reply.empty() ? "<disconnected>" : reply) << "\n";
      ++failures;
    }
  }
  return failures;
}

int RunSmoke(int clients) {
  const std::string path =
      "/tmp/mr_smoke_" + std::to_string(::getpid()) + ".sock";
  Catalog catalog;
  if (auto seeded = datagen::MakePaperPurchaseTable(&catalog); !seeded.ok()) {
    return Fail(seeded.status().ToString());
  }
  server::Server server(&catalog);
  server::SocketServer socket_server(&server, path);
  if (Status status = socket_server.Start(); !status.ok()) {
    return Fail(status.ToString());
  }

  const int64_t runs_before = sql::GlobalObservability().run_count();
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 1; c <= clients; ++c) {
    threads.emplace_back(
        [&, c] { failures.fetch_add(RunSmokeClient(path, c)); });
  }
  for (std::thread& t : threads) t.join();

  // Observability gates (DESIGN.md §16): the slow-query log captures a
  // deliberately slow statement, and \metrics emits Prometheus text that
  // round-trips through the validating parser.
  {
    SmokeClient observer(path);
    if (!observer.ok()) return Fail("observability client failed to connect");
    if (observer.SendLine("\\set slow_query_micros 1") != "OK") {
      return Fail("\\set slow_query_micros rejected");
    }
    // Any real statement takes >= 1us, so this must land in the slow ring.
    if (observer.Execute("SELECT customer, item FROM Purchase")
            .rfind("OK", 0) != 0) {
      return Fail("slow probe statement failed");
    }
    const std::string metrics = observer.SendLine("\\metrics");
    if (Status status = ValidatePrometheusText(metrics); !status.ok()) {
      return Fail("\\metrics output not parseable: " + status.ToString());
    }
    if (metrics.find("minerule_server_statements") == std::string::npos ||
        metrics.find("minerule_server_statement_micros_bucket") ==
            std::string::npos) {
      return Fail("\\metrics output missing server series");
    }
  }
  socket_server.Stop();

  if (failures.load() != 0) return Fail("statement failures over the socket");
  // The N conversation clients plus the observability client.
  if (socket_server.connections_accepted() != clients + 1) {
    return Fail("expected " + std::to_string(clients + 1) +
                " connections, got " +
                std::to_string(socket_server.connections_accepted()));
  }

  // Exactly one mr_runs row per statement — 4 per conversation client plus
  // the observer's slow probe — every one attributed to a session with an
  // admission decision.
  const int64_t expected = static_cast<int64_t>(clients) * 4 + 1;
  const int64_t recorded = sql::GlobalObservability().run_count() - runs_before;
  if (recorded != expected) {
    return Fail("expected " + std::to_string(expected) + " mr_runs rows, got " +
                std::to_string(recorded));
  }
  for (const sql::RunRecord& run : sql::GlobalObservability().Runs()) {
    if (run.session_id <= 0 || run.admission.empty()) {
      return Fail("mr_runs row " + std::to_string(run.run_id) +
                  " lacks session attribution");
    }
  }

  // And the attribution is queryable from SQL, through a fresh session.
  auto session = server.Connect("smoke-check");
  auto check = session->Execute(
      "SELECT session_id, admission FROM mr_runs WHERE queue_wait_micros >= "
      "0");
  if (!check.ok()) return Fail(check.status().ToString());
  if (static_cast<int64_t>(check->query.rows.size()) < expected) {
    return Fail("mr_runs not queryable from SQL");
  }

  // The slow probe above must be visible through the mr_slow_queries
  // system table, operator profile included.
  auto slow = session->Execute(
      "SELECT statement, total_micros, operators FROM mr_slow_queries");
  if (!slow.ok()) return Fail(slow.status().ToString());
  bool probe_seen = false;
  for (const Row& row : slow->query.rows) {
    if (row[0].ToString().find("FROM Purchase") != std::string::npos &&
        !row[2].ToString().empty()) {
      probe_seen = true;
    }
  }
  if (!probe_seen) {
    return Fail("slow probe missing from mr_slow_queries");
  }
  // All smoke sessions are gone, so nothing may linger in-flight.
  if (sql::GlobalStatementRegistry().active_count() != 0) {
    return Fail("mr_active_statements not empty after smoke");
  }

  std::cout << "clients=" << clients << " statements=" << recorded
            << " max_concurrent=" << server.scheduler()->max_concurrent()
            << "\nSERVER SMOKE OK\n";
  return 0;
}

/// Atomically rewrites `path` with the Prometheus exposition of the whole
/// registry (write to path.tmp, rename over), node_exporter
/// textfile-collector style.
bool WriteMetricsFile(const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << GlobalMetrics().FormatPrometheus();
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

int Serve(const std::string& path, int max_concurrent,
          const std::string& metrics_out) {
  Catalog catalog;
  if (auto seeded = datagen::MakePaperPurchaseTable(&catalog); !seeded.ok()) {
    return Fail(seeded.status().ToString());
  }
  server::ServerOptions options;
  options.max_concurrent = max_concurrent;
  server::Server server(&catalog, options);
  server::SocketServer socket_server(&server, path);
  if (Status status = socket_server.Start(); !status.ok()) {
    return Fail(status.ToString());
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::cout << "minerule_server: serving the paper's demo catalog at " << path
            << " (max_concurrent=" << server.scheduler()->max_concurrent()
            << "); press Ctrl-C to stop\n";
  int ticks = 0;
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (!metrics_out.empty() && ++ticks % 10 == 0) {
      if (!WriteMetricsFile(metrics_out)) {
        GlobalLog().Log(LogLevel::kWarn, "server.main",
                        "failed to write metrics file",
                        {{"path", metrics_out}});
      }
    }
  }
  socket_server.Stop();
  if (!metrics_out.empty()) WriteMetricsFile(metrics_out);
  std::cout << "minerule_server: stopped after "
            << socket_server.connections_accepted() << " connection(s)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* usage =
      "usage: minerule_server --socket=PATH [--max-concurrent=N] "
      "[--metrics-out=FILE] [--log-level=LEVEL] [--log-json] | "
      "--smoke [--clients=N]\n";
  std::string socket_path;
  std::string metrics_out;
  bool smoke = false;
  int clients = 8;
  int max_concurrent = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--max-concurrent=", 0) == 0) {
      max_concurrent = std::atoi(arg.c_str() + 17);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(14);
    } else if (arg.rfind("--log-level=", 0) == 0) {
      LogLevel level;
      if (!ParseLogLevel(arg.substr(12), &level)) {
        std::cerr << "minerule_server: unknown log level '" << arg.substr(12)
                  << "'\n";
        return 2;
      }
      GlobalLog().set_min_level(level);
    } else if (arg == "--log-json") {
      GlobalLog().set_json(true);
    } else {
      std::cerr << usage;
      return 2;
    }
  }
  if (smoke) return RunSmoke(clients > 0 ? clients : 1);
  if (socket_path.empty()) {
    std::cerr << usage;
    return 2;
  }
  return Serve(socket_path, max_concurrent, metrics_out);
}
