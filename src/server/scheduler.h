#ifndef MINERULE_SERVER_SCHEDULER_H_
#define MINERULE_SERVER_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace minerule::server {

/// What the scheduler decided about one statement.
struct Admission {
  /// Microseconds the statement waited for a slot; 0 when admitted
  /// immediately.
  int64_t queue_wait_micros = 0;
  /// True when the statement had to wait behind other running statements.
  bool queued = false;

  const char* Decision() const { return queued ? "queued" : "immediate"; }
};

/// Admission control for the server front end (DESIGN.md §15): at most
/// `max_concurrent` statements execute at once; the rest wait in strict
/// FIFO order. Every statement — read or write — passes through here, so N
/// sessions share the one process-wide thread pool at a bounded
/// multiprogramming level instead of oversubscribing it N-fold.
///
/// Admission is independent of the catalog latch: a slot is acquired before
/// the latch and released after it, so a queued writer never blocks an
/// admitted reader (and vice versa) — only slot counts couple them.
class Scheduler {
 public:
  /// `max_concurrent` <= 0 resolves to max(2, hardware_threads / 2): enough
  /// multiprogramming to overlap readers, never more runners than can share
  /// the worker pool productively.
  explicit Scheduler(int max_concurrent = 0);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Blocks until a slot is free (FIFO) and returns the admission record.
  Admission Admit();

  /// Returns the slot taken by Admit. Every Admit must be paired with
  /// exactly one Release.
  void Release();

  int max_concurrent() const { return max_concurrent_; }

  /// Statements currently holding a slot (diagnostics; racy by nature).
  int active() const;

  /// Statements currently blocked in Admit waiting for a slot. Lets tests
  /// (and diagnostics) observe "someone is queued" deterministically.
  int waiting() const;

 private:
  const int max_concurrent_;
  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
  /// Tickets are dense: statement i is admitted once completed_ +
  /// max_concurrent_ > i, which is exactly FIFO admission.
  int64_t next_ticket_ = 0;
  int64_t completed_ = 0;
  int active_ = 0;
  int waiting_ = 0;
};

}  // namespace minerule::server

#endif  // MINERULE_SERVER_SCHEDULER_H_
