#ifndef MINERULE_SERVER_SOCKET_SERVER_H_
#define MINERULE_SERVER_SOCKET_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "server/server.h"

namespace minerule::server {

class Session;

/// Applies a "\set NAME VALUE" command to the session and returns the
/// reply line ("OK" or a distinct "ERR ..." per failure mode: usage,
/// unknown option, malformed value). Values are parsed strictly — "8x" is
/// an error, not 8. Exposed for the key-matrix unit test; the socket
/// protocol handler is the production caller.
std::string ApplySetCommand(Session* session, const std::string& line);

/// Thin line protocol over a local (AF_UNIX) stream socket — the network
/// face of Server::Connect (DESIGN.md §15). One connection == one session.
///
/// Requests are UTF-8 text. A statement is accumulated line by line and
/// executed when a line's last non-blank character is ';' (the terminator
/// is stripped before execution). Lines starting with '\' are session
/// commands, executed immediately:
///
///   \set threads N | vectorized on|off | cost_based on|off |
///        memory_limit BYTES | slow_query_micros N
///                                    -- per-session options
///   \metrics                         -- Prometheus text exposition of the
///                                       whole metrics registry (§16)
///   \quit                            -- close the connection
///
/// Every request gets one response, terminated by a line containing a
/// single '.':
///
///   OK rows=<n> affected=<m> run=<id> epoch=<e>\n
///   <tab-separated column names, when the result has rows>\n
///   <tab-separated row values>...\n
///   .\n
///
/// or, on failure, "ERR <message with newlines collapsed>" followed by the
/// '.' terminator. The connection survives errors; sessions end when the
/// client disconnects or sends \quit.
///
/// Input is bounded: a connection buffering more than kMaxStatementBytes
/// toward one statement gets "ERR statement too large ..." and is closed
/// (the stream position is unrecoverable mid-statement), counted by the
/// server.socket.oversized_statements metric.
class SocketServer {
 public:
  /// Bytes a connection may buffer toward one statement (raw input plus
  /// accumulated lines) before it is rejected and closed.
  static constexpr size_t kMaxStatementBytes = 1 << 20;  // 1 MiB

  /// Serves `server` at the given filesystem socket path (unlinked first
  /// if it exists; AF_UNIX paths must be short — keep them under ~100
  /// bytes).
  SocketServer(Server* server, std::string socket_path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens and starts the accept loop.
  Status Start();

  /// Stops accepting, shuts down live connections and joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }

  /// Connections ever accepted (diagnostics).
  int64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Server* server_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> connections_accepted_{0};
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace minerule::server

#endif  // MINERULE_SERVER_SOCKET_SERVER_H_
