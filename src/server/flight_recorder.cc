#include "server/flight_recorder.h"

#include "common/json.h"

namespace minerule::server {

void FlightRecorder::Record(FlightEvent event) {
  if (event.statement.size() > kMaxStatementBytes) {
    event.statement.resize(kMaxStatementBytes);
    event.statement += "...";
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++recorded_;
  events_.push_back(std::move(event));
  while (events_.size() > kCapacity) events_.pop_front();
}

std::vector<FlightEvent> FlightRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {events_.begin(), events_.end()};
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

int64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::string FlightRecorder::DumpJson(int64_t session_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("session").Int(session_id);
  writer.Key("recorded").Int(recorded_);
  writer.Key("events").BeginArray();
  for (const FlightEvent& event : events_) {
    writer.BeginObject();
    writer.Key("statement_id").Int(event.statement_id);
    writer.Key("statement").String(event.statement);
    writer.Key("class").String(event.statement_class);
    writer.Key("status").String(event.status);
    writer.Key("total_micros").Int(event.total_micros);
    writer.Key("queue_wait_micros").Int(event.queue_wait_micros);
    writer.Key("epoch_end").Int(static_cast<int64_t>(event.epoch_end));
    writer.Key("run_id").Int(event.run_id);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.str();
}

}  // namespace minerule::server
