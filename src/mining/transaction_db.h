#ifndef MINERULE_MINING_TRANSACTION_DB_H_
#define MINERULE_MINING_TRANSACTION_DB_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mining/gid_list.h"
#include "mining/itemset.h"

namespace minerule::mining {

/// The simple-core view of the encoded source: one itemset per group, built
/// from the (Gid, Bid) pairs of the CodedSource table. Offers both the
/// horizontal layout (one itemset per group, for Apriori/DHP/Partition) and
/// the vertical layout (one gid-list per item, for the gid-list miner).
///
/// `total_groups` is the Q1 count — the support denominator. It can exceed
/// the number of transactions here because CodedSource only keeps groups
/// that contain at least one large item.
class TransactionDb {
 public:
  TransactionDb() = default;

  /// Builds from encoded pairs; duplicates are tolerated (CodedSource is
  /// DISTINCT but callers may feed raw data in tests).
  static TransactionDb FromPairs(std::vector<std::pair<Gid, ItemId>> pairs,
                                 int64_t total_groups);

  /// Builds directly from per-group itemsets (gid = position).
  static TransactionDb FromTransactions(std::vector<Itemset> transactions,
                                        int64_t total_groups);

  int64_t total_groups() const { return total_groups_; }
  size_t num_transactions() const { return transactions_.size(); }

  /// Group ids aligned with transactions().
  const std::vector<Gid>& gids() const { return gids_; }
  const std::vector<Itemset>& transactions() const { return transactions_; }

  /// Distinct items, ascending.
  const std::vector<ItemId>& items() const { return items_; }

  /// Vertical layout: gid-list of one item (empty list if unknown).
  const GidList& gid_list(ItemId item) const;

  /// Restriction of this database to a contiguous slice of transactions
  /// (used by the Partition miner). total_groups of the slice equals the
  /// slice size (local supports are relative to the partition).
  TransactionDb Slice(size_t begin, size_t end) const;

 private:
  void BuildIndexes();

  int64_t total_groups_ = 0;
  std::vector<Gid> gids_;
  std::vector<Itemset> transactions_;
  std::vector<ItemId> items_;
  std::unordered_map<ItemId, GidList> vertical_;
};

}  // namespace minerule::mining

#endif  // MINERULE_MINING_TRANSACTION_DB_H_
