#ifndef MINERULE_MINING_RULE_H_
#define MINERULE_MINING_RULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mining/itemset.h"

namespace minerule::mining {

/// Cardinality bound from a MINE RULE <card spec> ("1..n", "2..4", ...).
/// max < 0 means unbounded ("n").
struct CardinalityConstraint {
  int64_t min = 1;
  int64_t max = -1;

  bool Allows(size_t size) const {
    return static_cast<int64_t>(size) >= min &&
           (max < 0 || static_cast<int64_t>(size) <= max);
  }

  /// Upper bound usable as a mining depth limit; -1 if unbounded.
  int64_t bound() const { return max; }
};

/// A large itemset together with the number of (valid) groups containing it.
struct FrequentItemset {
  Itemset items;
  int64_t group_count = 0;
};

/// An association rule over encoded items. Support and confidence follow
/// the paper's §2 definitions:
///   support    = group_count / total_groups
///   confidence = group_count / body_group_count
struct MinedRule {
  Itemset body;
  Itemset head;
  int64_t group_count = 0;       // groups containing body ∪ head (as a rule)
  int64_t body_group_count = 0;  // groups containing the body

  double Support(int64_t total_groups) const {
    return total_groups == 0
               ? 0.0
               : static_cast<double>(group_count) /
                     static_cast<double>(total_groups);
  }
  double Confidence() const {
    return body_group_count == 0
               ? 0.0
               : static_cast<double>(group_count) /
                     static_cast<double>(body_group_count);
  }

  /// "{1, 2} => {3}" for diagnostics.
  std::string ToString() const;
};

/// Canonical ordering for deterministic output and test comparison:
/// lexicographic on (body, head).
bool RuleLess(const MinedRule& a, const MinedRule& b);

/// Derives association rules from a set of large itemsets, per the simple
/// core processing of §4.3.1: for each large L and each subset H ⊂ L, form
/// (L−H) ⇒ H when confidence ≥ min_confidence and both sides satisfy their
/// cardinality constraints. `min_group_count` re-checks rule support (the
/// rule's support equals L's, so this matters only when callers pass
/// itemsets mined at a lower threshold, e.g. the sampling miner).
std::vector<MinedRule> BuildRulesFromItemsets(
    const std::vector<FrequentItemset>& itemsets, int64_t min_group_count,
    double min_confidence, const CardinalityConstraint& body_card,
    const CardinalityConstraint& head_card);

}  // namespace minerule::mining

#endif  // MINERULE_MINING_RULE_H_
