#ifndef MINERULE_MINING_PARTITION_H_
#define MINERULE_MINING_PARTITION_H_

#include "mining/simple_miner.h"

namespace minerule::mining {

/// Partition — Savasere, Omiecinski & Navathe [VLDB'95]. Phase 1 splits the
/// transactions into `partition_count` slices and mines each slice
/// independently (with the gid-list scheme, which the original paper also
/// uses via its tidlists); every globally large itemset must be locally
/// large in at least one slice, so the union of local results is a complete
/// candidate set. Phase 2 counts all candidates in one full pass.
///
/// Both phases are embarrassingly parallel and run on the shared pool:
/// slices are mined concurrently (num_threads workers, <= 0 = hardware) and
/// phase-2 candidates are counted in parallel chunks. A partition_count
/// larger than the transaction count is clamped so no slice is empty.
class PartitionMiner : public FrequentItemsetMiner {
 public:
  explicit PartitionMiner(int partition_count, int num_threads = 1)
      : partition_count_(partition_count), num_threads_(num_threads) {}

  const char* name() const override { return "partition"; }

  Result<std::vector<FrequentItemset>> Mine(const TransactionDb& db,
                                            int64_t min_group_count,
                                            int64_t max_size,
                                            SimpleMinerStats* stats) override;

 private:
  int partition_count_;
  int num_threads_;
};

}  // namespace minerule::mining

#endif  // MINERULE_MINING_PARTITION_H_
