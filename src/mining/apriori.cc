#include "mining/apriori.h"

#include <unordered_map>

#include "common/thread_pool.h"
#include "common/trace.h"

namespace minerule::mining {

std::vector<FrequentItemset> FrequentSingletons(const TransactionDb& db,
                                                int64_t min_group_count) {
  std::vector<FrequentItemset> level;
  for (ItemId item : db.items()) {
    const int64_t count = static_cast<int64_t>(db.gid_list(item).size());
    if (count >= min_group_count) {
      level.push_back({Itemset{item}, count});
    }
  }
  return level;  // db.items() ascending => lexicographic order
}

namespace {

/// Counts the candidates against transactions [begin, end) into `counts`
/// (accumulating). Reads only shared immutable state; each caller owns its
/// own `counts`, which is what makes the parallel scan race-free.
void CountTransactionRange(
    const TransactionDb& db, const std::vector<Itemset>& candidates,
    const std::unordered_map<Itemset, size_t, ItemsetHash>& index,
    size_t begin, size_t end, std::vector<int64_t>* counts) {
  const size_t k = candidates[0].size();
  Itemset subset;
  subset.reserve(k);
  // Recursively enumerate the k-subsets of a transaction, short-circuiting
  // branches whose running prefix cannot reach size k.
  auto enumerate = [&](const Itemset& txn, auto&& self, size_t start) -> void {
    if (subset.size() == k) {
      auto it = index.find(subset);
      if (it != index.end()) ++(*counts)[it->second];
      return;
    }
    const size_t needed = k - subset.size();
    for (size_t i = start; i + needed <= txn.size(); ++i) {
      subset.push_back(txn[i]);
      self(txn, self, i + 1);
      subset.pop_back();
    }
  };

  for (size_t t = begin; t < end; ++t) {
    const Itemset& txn = db.transactions()[t];
    if (txn.size() < k) continue;
    // When the transaction is wide, checking each candidate directly is
    // cheaper than enumerating C(|txn|, k) subsets.
    double combos = 1.0;
    for (size_t i = 0; i < k; ++i) {
      combos *= static_cast<double>(txn.size() - i) / static_cast<double>(i + 1);
    }
    if (combos > static_cast<double>(candidates.size()) * 4.0) {
      for (size_t c = 0; c < candidates.size(); ++c) {
        if (IsSubset(candidates[c], txn)) ++(*counts)[c];
      }
    } else {
      enumerate(txn, enumerate, 0);
    }
  }
}

}  // namespace

std::vector<int64_t> CountCandidatesHorizontally(
    const TransactionDb& db, const std::vector<Itemset>& candidates,
    int num_threads) {
  std::vector<int64_t> counts(candidates.size(), 0);
  if (candidates.empty()) return counts;

  std::unordered_map<Itemset, size_t, ItemsetHash> index;
  index.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) index.emplace(candidates[i], i);

  const size_t n = db.num_transactions();
  const size_t chunks = ParallelChunks(n, num_threads);
  if (chunks <= 1) {
    CountTransactionRange(db, candidates, index, 0, n, &counts);
    return counts;
  }

  // Per-range counters, merged in range order. int64 addition is
  // associative, so the merged totals match the serial scan exactly.
  std::vector<std::vector<int64_t>> partial(chunks);
  ParallelFor(n, num_threads, [&](size_t chunk, size_t begin, size_t end) {
    partial[chunk].assign(candidates.size(), 0);
    CountTransactionRange(db, candidates, index, begin, end, &partial[chunk]);
  });
  for (const std::vector<int64_t>& part : partial) {
    for (size_t c = 0; c < counts.size(); ++c) counts[c] += part[c];
  }
  return counts;
}

Result<std::vector<FrequentItemset>> AprioriMiner::Mine(
    const TransactionDb& db, int64_t min_group_count, int64_t max_size,
    SimpleMinerStats* stats) {
  std::vector<FrequentItemset> result;
  std::vector<FrequentItemset> level = FrequentSingletons(db, min_group_count);
  if (stats != nullptr) {
    stats->passes = 1;
    stats->candidates_per_level.push_back(
        static_cast<int64_t>(db.items().size()));
    stats->large_per_level.push_back(static_cast<int64_t>(level.size()));
  }

  while (!level.empty()) {
    ScopedSpan pass_span("core.apriori.pass", "core",
                         static_cast<int64_t>(level[0].items.size()));
    result.insert(result.end(), level.begin(), level.end());
    if (max_size >= 0 &&
        static_cast<int64_t>(level[0].items.size()) >= max_size) {
      break;
    }
    std::vector<Itemset> prev;
    prev.reserve(level.size());
    for (const FrequentItemset& fi : level) prev.push_back(fi.items);
    std::vector<Itemset> candidates = GenerateCandidates(prev);
    if (candidates.empty()) break;

    std::vector<int64_t> counts =
        CountCandidatesHorizontally(db, candidates, num_threads_);
    std::vector<FrequentItemset> next;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (counts[i] >= min_group_count) {
        next.push_back({std::move(candidates[i]), counts[i]});
      }
    }
    SortFrequentItemsets(&next);
    if (stats != nullptr) {
      ++stats->passes;
      stats->candidates_per_level.push_back(
          static_cast<int64_t>(candidates.size()));
      stats->large_per_level.push_back(static_cast<int64_t>(next.size()));
    }
    level = std::move(next);
  }
  SortFrequentItemsets(&result);
  return result;
}

}  // namespace minerule::mining
