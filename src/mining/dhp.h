#ifndef MINERULE_MINING_DHP_H_
#define MINERULE_MINING_DHP_H_

#include "mining/simple_miner.h"

namespace minerule::mining {

/// DHP — the hash-based algorithm of Park, Chen & Yu [SIGMOD'95]. During
/// the first pass it hashes every 2-subset of every transaction into a
/// bucket-count table; a candidate pair is generated in pass 2 only if both
/// items are frequent *and* its bucket count reaches the threshold, which
/// prunes most of the quadratic pair-candidate space. Later levels proceed
/// as in Apriori.
/// Pass-1 pair hashing and all support counting run over transaction
/// ranges in parallel (num_threads workers, <= 0 = hardware), with
/// per-range tables merged deterministically.
class DhpMiner : public FrequentItemsetMiner {
 public:
  explicit DhpMiner(int num_buckets, int num_threads = 1)
      : num_buckets_(num_buckets), num_threads_(num_threads) {}

  const char* name() const override { return "dhp"; }

  Result<std::vector<FrequentItemset>> Mine(const TransactionDb& db,
                                            int64_t min_group_count,
                                            int64_t max_size,
                                            SimpleMinerStats* stats) override;

 private:
  int num_buckets_;
  int num_threads_;
};

}  // namespace minerule::mining

#endif  // MINERULE_MINING_DHP_H_
