#ifndef MINERULE_MINING_CORE_OPERATOR_H_
#define MINERULE_MINING_CORE_OPERATOR_H_

#include <string>
#include <tuple>
#include <vector>

#include "common/result.h"
#include "mining/general_miner.h"
#include "mining/simple_miner.h"

namespace minerule::mining {

/// The directives the core operator receives from the translator (§3: "uses
/// directives from the translator to decide the mining technique to
/// apply"). Everything else about the statement is hidden behind the
/// encoded tables.
struct CoreDirectives {
  bool general = false;             // general vs simple core processing
  bool has_clusters = false;        // C: CLUSTER BY present
  bool distinct_head = false;       // H: separate head encoding
  bool has_input_rules = false;     // M: elementary rules built in SQL
  bool has_cluster_couples = false; // K: valid pairs restricted by SQL
};

/// The encoded-table contents handed to the core operator. The kernel
/// fetches these from the DBMS (CodedSource is read through the SQL engine
/// because Q11 defines it as a view) and strips them down to plain integers
/// here — the algorithm-interoperability boundary.
struct CodedSourceData {
  // Simple core: CodedSource(Gid, Bid).
  std::vector<std::pair<Gid, ItemId>> simple_pairs;

  // General core: role-tagged rows CodedSourceB(Gid, Cid, Bid) and
  // CodedSourceH(Gid, Cid, Hid); head_rows stays empty when !H.
  struct RoleRow {
    Gid gid;
    Cid cid;
    ItemId item;
  };
  std::vector<RoleRow> body_rows;
  std::vector<RoleRow> head_rows;

  // ClusterCouples(Gid, BCid, HCid), present iff K.
  std::vector<std::tuple<Gid, Cid, Cid>> cluster_couples;

  // InputRules(Gid, BCid, HCid, Bid, Hid), present iff M.
  std::vector<GeneralInput::ElementaryOccurrence> input_rules;

  int64_t total_groups = 0;  // the Q1 count (:totg)
};

/// Core-operator knobs: which pool member the simple core uses, and how
/// many worker threads the mining layer may draw from the shared pool.
struct CoreOptions {
  SimpleAlgorithm algorithm = SimpleAlgorithm::kGidList;
  SimpleMinerOptions simple_options;

  /// Applied to whichever core runs (simple pool member or the general
  /// lattice miner); overrides simple_options.num_threads. <= 0 means
  /// hardware concurrency, 1 preserves the serial execution exactly.
  int num_threads = 0;
};

/// Counters surfaced to MiningRunStats.
struct CoreStats {
  bool used_general = false;
  /// Name of the miner that ran: a pool-member name ("gidlist", "dhp", ...)
  /// or "general".
  std::string algorithm;
  SimpleMinerStats simple;
  GeneralMinerStats general;
  int64_t rules_found = 0;
};

/// Runs the mining technique selected by the directives over the encoded
/// data and returns encoded rules (§4.4's conceptual output, before the
/// postprocessor decodes them).
Result<std::vector<MinedRule>> RunCoreOperator(
    const CodedSourceData& data, const CoreDirectives& directives,
    double min_support, double min_confidence,
    const CardinalityConstraint& body_card,
    const CardinalityConstraint& head_card, const CoreOptions& options,
    CoreStats* stats);

/// Assembles the GeneralInput structure from role rows and couples
/// (exposed for tests).
GeneralInput BuildGeneralInput(const CodedSourceData& data,
                               const CoreDirectives& directives);

}  // namespace minerule::mining

#endif  // MINERULE_MINING_CORE_OPERATOR_H_
