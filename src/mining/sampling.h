#ifndef MINERULE_MINING_SAMPLING_H_
#define MINERULE_MINING_SAMPLING_H_

#include "mining/simple_miner.h"

namespace minerule::mining {

/// Sampling — Toivonen [VLDB'96]. Mines a random sample of the groups at a
/// lowered threshold, then makes one full pass counting the sample-frequent
/// itemsets plus their negative border. If nothing in the border turns out
/// globally frequent (the common case), one pass sufficed; otherwise a
/// second full pass extends the candidates until closed — which is why the
/// paper the architecture cites says the I/O cost is "more than one but
/// less than two" passes.
class SamplingMiner : public FrequentItemsetMiner {
 public:
  SamplingMiner(double sample_rate, double lowering_factor, uint64_t seed)
      : sample_rate_(sample_rate),
        lowering_factor_(lowering_factor),
        seed_(seed) {}

  const char* name() const override { return "sampling"; }

  Result<std::vector<FrequentItemset>> Mine(const TransactionDb& db,
                                            int64_t min_group_count,
                                            int64_t max_size,
                                            SimpleMinerStats* stats) override;

 private:
  double sample_rate_;
  double lowering_factor_;
  uint64_t seed_;
};

}  // namespace minerule::mining

#endif  // MINERULE_MINING_SAMPLING_H_
