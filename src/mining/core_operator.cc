#include "mining/core_operator.h"

#include <map>

namespace minerule::mining {

GeneralInput BuildGeneralInput(const CodedSourceData& data,
                               const CoreDirectives& directives) {
  GeneralInput input;
  input.total_groups = data.total_groups;
  input.distinct_head_encoding = directives.distinct_head;
  input.all_pairs = !directives.has_cluster_couples;
  input.has_input_rules = directives.has_input_rules;
  input.input_rules = data.input_rules;

  // (gid -> (cid -> cluster)) assembled from the role rows.
  std::map<Gid, std::map<Cid, GeneralInput::Cluster>> assembly;
  for (const CodedSourceData::RoleRow& row : data.body_rows) {
    GeneralInput::Cluster& cluster = assembly[row.gid][row.cid];
    cluster.cid = row.cid;
    cluster.body_items.push_back(row.item);
  }
  if (directives.distinct_head) {
    for (const CodedSourceData::RoleRow& row : data.head_rows) {
      GeneralInput::Cluster& cluster = assembly[row.gid][row.cid];
      cluster.cid = row.cid;
      cluster.head_items.push_back(row.item);
    }
  }

  std::map<Gid, std::vector<std::pair<Cid, Cid>>> couples;
  for (const auto& [gid, bcid, hcid] : data.cluster_couples) {
    couples[gid].emplace_back(bcid, hcid);
  }

  input.groups.reserve(assembly.size());
  for (auto& [gid, clusters] : assembly) {
    GeneralInput::Group group;
    group.gid = gid;
    group.clusters.reserve(clusters.size());
    for (auto& [cid, cluster] : clusters) {
      Canonicalize(&cluster.body_items);
      if (directives.distinct_head) {
        Canonicalize(&cluster.head_items);
      } else {
        cluster.head_items = cluster.body_items;
      }
      group.clusters.push_back(std::move(cluster));
    }
    auto it = couples.find(gid);
    if (it != couples.end()) group.couples = std::move(it->second);
    input.groups.push_back(std::move(group));
  }
  return input;
}

Result<std::vector<MinedRule>> RunCoreOperator(
    const CodedSourceData& data, const CoreDirectives& directives,
    double min_support, double min_confidence,
    const CardinalityConstraint& body_card,
    const CardinalityConstraint& head_card, const CoreOptions& options,
    CoreStats* stats) {
  if (data.total_groups <= 0) {
    // No valid groups at all: no rules, trivially.
    if (stats != nullptr) stats->rules_found = 0;
    return std::vector<MinedRule>{};
  }
  if (!directives.general) {
    TransactionDb db =
        TransactionDb::FromPairs(data.simple_pairs, data.total_groups);
    SimpleMinerOptions simple_options = options.simple_options;
    simple_options.num_threads = options.num_threads;
    SimpleAlgorithm algorithm = options.algorithm;
    if (algorithm == SimpleAlgorithm::kAuto) {
      algorithm = ChooseSimpleAlgorithm(
          db, MinGroupCount(min_support, db.total_groups()));
    }
    MR_ASSIGN_OR_RETURN(
        std::vector<MinedRule> rules,
        MineSimpleRules(db, min_support, min_confidence, body_card, head_card,
                        algorithm, simple_options,
                        stats != nullptr ? &stats->simple : nullptr));
    if (stats != nullptr) {
      stats->used_general = false;
      // Always the resolved pool member — kAuto never surfaces here.
      stats->algorithm = SimpleAlgorithmName(algorithm);
      stats->rules_found = static_cast<int64_t>(rules.size());
    }
    return rules;
  }
  GeneralMiner miner(BuildGeneralInput(data, directives),
                     options.num_threads);
  MR_ASSIGN_OR_RETURN(
      std::vector<MinedRule> rules,
      miner.Mine(min_support, min_confidence, body_card, head_card,
                 stats != nullptr ? &stats->general : nullptr));
  if (stats != nullptr) {
    stats->used_general = true;
    stats->algorithm = "general";
    stats->rules_found = static_cast<int64_t>(rules.size());
  }
  return rules;
}

}  // namespace minerule::mining
