#ifndef MINERULE_MINING_APRIORI_H_
#define MINERULE_MINING_APRIORI_H_

#include "mining/simple_miner.h"

namespace minerule::mining {

/// Classic levelwise Apriori [Agrawal & Srikant, VLDB'94]: candidate
/// generation with apriori pruning, support counted by one horizontal scan
/// of the transactions per level. The scan is split into transaction ranges
/// counted concurrently (num_threads workers, <= 0 = hardware).
class AprioriMiner : public FrequentItemsetMiner {
 public:
  explicit AprioriMiner(int num_threads = 1) : num_threads_(num_threads) {}

  const char* name() const override { return "apriori"; }

  Result<std::vector<FrequentItemset>> Mine(const TransactionDb& db,
                                            int64_t min_group_count,
                                            int64_t max_size,
                                            SimpleMinerStats* stats) override;

 private:
  int num_threads_;
};

/// Shared helper: counts the support of each candidate (all of size k) with
/// one scan of db, via subset checks against a candidate hash set. The scan
/// runs over transaction ranges in parallel with per-range counters merged
/// in range order, so the totals are identical at every thread count.
std::vector<int64_t> CountCandidatesHorizontally(
    const TransactionDb& db, const std::vector<Itemset>& candidates,
    int num_threads = 1);

/// Shared helper: frequent singletons (level 1), sorted by item id.
std::vector<FrequentItemset> FrequentSingletons(const TransactionDb& db,
                                                int64_t min_group_count);

}  // namespace minerule::mining

#endif  // MINERULE_MINING_APRIORI_H_
