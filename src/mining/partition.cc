#include "mining/partition.h"

#include <cmath>
#include <unordered_set>

#include "mining/gidlist_miner.h"

namespace minerule::mining {

Result<std::vector<FrequentItemset>> PartitionMiner::Mine(
    const TransactionDb& db, int64_t min_group_count, int64_t max_size,
    SimpleMinerStats* stats) {
  if (partition_count_ <= 0) {
    return Status::InvalidArgument("partition count must be positive");
  }
  const size_t n = db.num_transactions();
  if (n == 0) return std::vector<FrequentItemset>{};
  const size_t parts = std::min<size_t>(static_cast<size_t>(partition_count_),
                                        std::max<size_t>(n, 1));

  // Phase 1: local mining. The local threshold for a slice of size s is
  // ceil(min_group_count * s / n): if an itemset misses that bound in every
  // slice, its slice counts sum to < min_group_count, so it cannot be
  // globally large (the Partition correctness argument).
  GidListMiner local_miner;
  std::unordered_set<Itemset, ItemsetHash> candidate_set;
  size_t begin = 0;
  for (size_t p = 0; p < parts; ++p) {
    const size_t end = begin + (n - begin) / (parts - p);
    if (end == begin) continue;
    TransactionDb slice = db.Slice(begin, end);
    const double scaled = static_cast<double>(min_group_count) *
                          static_cast<double>(end - begin) /
                          static_cast<double>(n);
    const int64_t local_threshold =
        std::max<int64_t>(1, static_cast<int64_t>(std::ceil(scaled - 1e-9)));
    MR_ASSIGN_OR_RETURN(
        std::vector<FrequentItemset> local,
        local_miner.Mine(slice, local_threshold, max_size, nullptr));
    for (FrequentItemset& fi : local) candidate_set.insert(std::move(fi.items));
    begin = end;
  }

  // Phase 2: one full counting pass over the vertical layout.
  std::vector<Itemset> candidates(candidate_set.begin(), candidate_set.end());
  SortItemsets(&candidates);
  std::vector<FrequentItemset> result;
  for (const Itemset& candidate : candidates) {
    GidList gids = db.gid_list(candidate[0]);
    for (size_t i = 1; i < candidate.size() && !gids.empty(); ++i) {
      gids = IntersectGidLists(gids, db.gid_list(candidate[i]));
    }
    const int64_t count = static_cast<int64_t>(gids.size());
    if (count >= min_group_count) {
      result.push_back({candidate, count});
    }
  }
  if (stats != nullptr) {
    stats->passes = 2;  // one pass of local mining + one verification pass
    stats->candidates_per_level.assign(
        1, static_cast<int64_t>(candidates.size()));
    stats->large_per_level.assign(1, static_cast<int64_t>(result.size()));
  }
  SortFrequentItemsets(&result);
  return result;
}

}  // namespace minerule::mining
