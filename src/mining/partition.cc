#include "mining/partition.h"

#include <cmath>
#include <unordered_set>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "mining/gidlist_miner.h"

namespace minerule::mining {

Result<std::vector<FrequentItemset>> PartitionMiner::Mine(
    const TransactionDb& db, int64_t min_group_count, int64_t max_size,
    SimpleMinerStats* stats) {
  if (partition_count_ <= 0) {
    return Status::InvalidArgument("partition count must be positive");
  }
  const size_t n = db.num_transactions();
  if (n == 0) return std::vector<FrequentItemset>{};
  // Clamp: more slices than transactions would leave some empty, and an
  // empty slice makes every itemset "locally large" at threshold 1 there.
  const size_t parts =
      std::min<size_t>(static_cast<size_t>(partition_count_), n);
  GlobalMetrics()
      .GetCounter("core.partition.slices")
      ->Add(static_cast<int64_t>(parts));

  // Deterministic slice boundaries: slice p covers [p*n/parts,
  // (p+1)*n/parts), each nonempty because parts <= n.
  std::vector<std::pair<size_t, size_t>> bounds;
  bounds.reserve(parts);
  for (size_t p = 0; p < parts; ++p) {
    bounds.emplace_back(p * n / parts, (p + 1) * n / parts);
  }

  // Phase 1: local mining, one slice per task on the shared pool. The local
  // threshold for a slice of size s is ceil(min_group_count * s / n): if an
  // itemset misses that bound in every slice, its slice counts sum to
  // < min_group_count, so it cannot be globally large (the Partition
  // correctness argument).
  std::vector<std::vector<FrequentItemset>> local_results(parts);
  std::vector<Status> local_status(parts, Status::OK());
  ParallelFor(parts, num_threads_, [&](size_t, size_t begin, size_t end) {
    GidListMiner local_miner;
    for (size_t p = begin; p < end; ++p) {
      ScopedSpan slice_span("core.partition.slice", "core",
                            static_cast<int64_t>(p));
      TransactionDb slice = db.Slice(bounds[p].first, bounds[p].second);
      const size_t slice_size = bounds[p].second - bounds[p].first;
      const double scaled = static_cast<double>(min_group_count) *
                            static_cast<double>(slice_size) /
                            static_cast<double>(n);
      const int64_t local_threshold =
          std::max<int64_t>(1, static_cast<int64_t>(std::ceil(scaled - 1e-9)));
      auto local = local_miner.Mine(slice, local_threshold, max_size, nullptr);
      if (!local.ok()) {
        local_status[p] = local.status();
        continue;
      }
      local_results[p] = std::move(local).value();
    }
  });
  // Merge serially in slice order (the union is order-independent anyway;
  // candidates get re-sorted below).
  std::unordered_set<Itemset, ItemsetHash> candidate_set;
  for (size_t p = 0; p < parts; ++p) {
    if (!local_status[p].ok()) return local_status[p];
    for (FrequentItemset& fi : local_results[p]) {
      candidate_set.insert(std::move(fi.items));
    }
  }

  // Phase 2: one full counting pass over the vertical layout, candidates
  // counted in parallel chunks. Each chunk writes disjoint slots of
  // `counts`, so the merge is implicit and deterministic.
  std::vector<Itemset> candidates(candidate_set.begin(), candidate_set.end());
  SortItemsets(&candidates);
  std::vector<int64_t> counts(candidates.size(), 0);
  ParallelFor(candidates.size(), num_threads_,
              [&](size_t, size_t begin, size_t end) {
                for (size_t c = begin; c < end; ++c) {
                  const Itemset& candidate = candidates[c];
                  GidList gids = db.gid_list(candidate[0]);
                  for (size_t i = 1; i < candidate.size() && !gids.empty();
                       ++i) {
                    gids = IntersectGidLists(gids, db.gid_list(candidate[i]));
                  }
                  counts[c] = static_cast<int64_t>(gids.size());
                }
              });
  std::vector<FrequentItemset> result;
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (counts[c] >= min_group_count) {
      result.push_back({candidates[c], counts[c]});
    }
  }
  if (stats != nullptr) {
    stats->passes = 2;  // one pass of local mining + one verification pass
    stats->candidates_per_level.assign(
        1, static_cast<int64_t>(candidates.size()));
    stats->large_per_level.assign(1, static_cast<int64_t>(result.size()));
    stats->partition_slice_sizes.clear();
    for (const auto& [begin, end] : bounds) {
      stats->partition_slice_sizes.push_back(
          static_cast<int64_t>(end - begin));
    }
  }
  SortFrequentItemsets(&result);
  return result;
}

}  // namespace minerule::mining
