#include "mining/itemset.h"

#include <algorithm>

namespace minerule::mining {

bool IsCanonical(const Itemset& items) {
  for (size_t i = 1; i < items.size(); ++i) {
    if (items[i - 1] >= items[i]) return false;
  }
  return true;
}

void Canonicalize(Itemset* items) {
  std::sort(items->begin(), items->end());
  items->erase(std::unique(items->begin(), items->end()), items->end());
}

bool IsSubset(const Itemset& sub, const Itemset& super) {
  size_t i = 0, j = 0;
  while (i < sub.size() && j < super.size()) {
    if (sub[i] == super[j]) {
      ++i;
      ++j;
    } else if (sub[i] > super[j]) {
      ++j;
    } else {
      return false;
    }
  }
  return i == sub.size();
}

bool SharesPrefix(const Itemset& a, const Itemset& b, size_t k) {
  if (a.size() < k || b.size() < k) return false;
  for (size_t i = 0; i < k; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

Itemset WithItem(const Itemset& base, ItemId extra) {
  Itemset out;
  out.reserve(base.size() + 1);
  auto pos = std::lower_bound(base.begin(), base.end(), extra);
  out.insert(out.end(), base.begin(), pos);
  out.push_back(extra);
  out.insert(out.end(), pos, base.end());
  return out;
}

namespace {

void SubsetsRec(const Itemset& items, size_t k, size_t start, Itemset* current,
                std::vector<Itemset>* out) {
  if (current->size() == k) {
    out->push_back(*current);
    return;
  }
  const size_t needed = k - current->size();
  for (size_t i = start; i + needed <= items.size() + 1 && i < items.size();
       ++i) {
    current->push_back(items[i]);
    SubsetsRec(items, k, i + 1, current, out);
    current->pop_back();
  }
}

}  // namespace

std::vector<Itemset> SubsetsOfSize(const Itemset& items, size_t k) {
  std::vector<Itemset> out;
  if (k > items.size()) return out;
  Itemset current;
  current.reserve(k);
  SubsetsRec(items, k, 0, &current, &out);
  return out;
}

std::string ItemsetToString(const Itemset& items) {
  std::string out = "{";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(items[i]);
  }
  out += "}";
  return out;
}

size_t ItemsetHash::operator()(const Itemset& items) const {
  size_t h = 0xcbf29ce484222325ull;
  for (ItemId item : items) {
    h ^= static_cast<size_t>(item) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  }
  return h;
}

}  // namespace minerule::mining
