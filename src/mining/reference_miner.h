#ifndef MINERULE_MINING_REFERENCE_MINER_H_
#define MINERULE_MINING_REFERENCE_MINER_H_

#include "mining/simple_miner.h"

namespace minerule::mining {

/// Brute-force oracle for property tests: enumerates every itemset over the
/// items actually present and counts it by scanning all transactions. No
/// pruning cleverness whatsoever — deliberately dumb, so the clever miners
/// can be validated against it. Guarded against blow-up: refuses databases
/// with more than kMaxItems distinct items.
class ReferenceMiner : public FrequentItemsetMiner {
 public:
  static constexpr size_t kMaxItems = 20;

  const char* name() const override { return "reference"; }

  Result<std::vector<FrequentItemset>> Mine(const TransactionDb& db,
                                            int64_t min_group_count,
                                            int64_t max_size,
                                            SimpleMinerStats* stats) override;
};

}  // namespace minerule::mining

#endif  // MINERULE_MINING_REFERENCE_MINER_H_
