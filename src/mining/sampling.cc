#include "mining/sampling.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"
#include "mining/gidlist_miner.h"

namespace minerule::mining {

namespace {

/// Counts one candidate against the full vertical layout.
int64_t CountGlobally(const TransactionDb& db, const Itemset& candidate) {
  GidList gids = db.gid_list(candidate[0]);
  for (size_t i = 1; i < candidate.size() && !gids.empty(); ++i) {
    gids = IntersectGidLists(gids, db.gid_list(candidate[i]));
  }
  return static_cast<int64_t>(gids.size());
}

/// The negative border: minimal itemsets not in `frequent` — i.e. every
/// candidate produced by one Apriori extension step from `frequent` (plus
/// the infrequent singletons) that is not itself in `frequent`.
std::vector<Itemset> NegativeBorder(
    const TransactionDb& db,
    const std::unordered_set<Itemset, ItemsetHash>& frequent,
    int64_t max_size) {
  std::vector<Itemset> border;
  // Infrequent singletons.
  for (ItemId item : db.items()) {
    Itemset single{item};
    if (frequent.find(single) == frequent.end()) border.push_back(single);
  }
  // Group frequent sets by size, run the candidate-generation join.
  std::unordered_map<size_t, std::vector<Itemset>> by_size;
  for (const Itemset& items : frequent) by_size[items.size()].push_back(items);
  for (auto& [size, level] : by_size) {
    if (max_size >= 0 && static_cast<int64_t>(size) >= max_size) continue;
    SortItemsets(&level);
    for (Itemset& candidate : GenerateCandidates(level)) {
      if (frequent.find(candidate) == frequent.end()) {
        border.push_back(std::move(candidate));
      }
    }
  }
  SortItemsets(&border);
  border.erase(std::unique(border.begin(), border.end()), border.end());
  return border;
}

}  // namespace

Result<std::vector<FrequentItemset>> SamplingMiner::Mine(
    const TransactionDb& db, int64_t min_group_count, int64_t max_size,
    SimpleMinerStats* stats) {
  if (sample_rate_ <= 0.0 || sample_rate_ > 1.0) {
    return Status::InvalidArgument("sample rate must be in (0, 1]");
  }
  const size_t n = db.num_transactions();
  if (n == 0) return std::vector<FrequentItemset>{};

  // Draw the sample (without replacement, deterministic seed).
  Random rng(seed_);
  std::vector<size_t> indexes(n);
  for (size_t i = 0; i < n; ++i) indexes[i] = i;
  const size_t sample_size = std::max<size_t>(
      1, static_cast<size_t>(std::llround(sample_rate_ * static_cast<double>(n))));
  for (size_t i = 0; i < sample_size; ++i) {
    const size_t j = i + static_cast<size_t>(rng.NextBounded(n - i));
    std::swap(indexes[i], indexes[j]);
  }
  std::vector<Itemset> sample_txns;
  sample_txns.reserve(sample_size);
  for (size_t i = 0; i < sample_size; ++i) {
    sample_txns.push_back(db.transactions()[indexes[i]]);
  }
  TransactionDb sample = TransactionDb::FromTransactions(
      std::move(sample_txns), static_cast<int64_t>(sample_size));

  // Mine the sample at a lowered threshold to reduce the chance of misses.
  const double global_fraction = static_cast<double>(min_group_count) /
                                 static_cast<double>(db.total_groups());
  const double lowered_fraction = global_fraction * lowering_factor_;
  const int64_t sample_threshold = std::max<int64_t>(
      1, static_cast<int64_t>(
             std::ceil(lowered_fraction * static_cast<double>(sample_size) -
                       1e-9)));
  GidListMiner sample_miner;
  MR_ASSIGN_OR_RETURN(
      std::vector<FrequentItemset> sample_frequent,
      sample_miner.Mine(sample, sample_threshold, max_size, nullptr));

  std::unordered_set<Itemset, ItemsetHash> candidate_set;
  for (FrequentItemset& fi : sample_frequent) {
    candidate_set.insert(std::move(fi.items));
  }

  // Full pass: count candidates and their negative border.
  bool needed_second_pass = false;
  std::vector<FrequentItemset> result;
  std::unordered_set<Itemset, ItemsetHash> confirmed;
  int passes = 1;  // the sample mining reads only the sample
  while (true) {
    ++passes;
    std::vector<Itemset> to_count(candidate_set.begin(), candidate_set.end());
    for (Itemset& border_set :
         NegativeBorder(db, candidate_set, max_size)) {
      to_count.push_back(std::move(border_set));
    }
    SortItemsets(&to_count);
    to_count.erase(std::unique(to_count.begin(), to_count.end()),
                   to_count.end());

    bool miss = false;
    for (const Itemset& candidate : to_count) {
      if (confirmed.count(candidate) > 0) continue;
      const int64_t count = CountGlobally(db, candidate);
      if (count >= min_group_count) {
        result.push_back({candidate, count});
        confirmed.insert(candidate);
        if (candidate_set.find(candidate) == candidate_set.end()) {
          // A border set is globally frequent: Toivonen's "miss". Its
          // extensions might be frequent too — iterate with it included.
          miss = true;
          candidate_set.insert(candidate);
        }
      }
    }
    if (!miss) break;
    needed_second_pass = true;
    // Re-seed candidate_set with everything confirmed frequent so the next
    // border step explores the uncovered extensions.
    candidate_set = confirmed;
  }

  if (stats != nullptr) {
    stats->passes = passes;
    stats->sampling_needed_full_pass = needed_second_pass;
    stats->candidates_per_level.assign(
        1, static_cast<int64_t>(confirmed.size()));
    stats->large_per_level.assign(1, static_cast<int64_t>(result.size()));
  }
  SortFrequentItemsets(&result);
  return result;
}

}  // namespace minerule::mining
