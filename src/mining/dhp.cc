#include "mining/dhp.h"

#include "common/thread_pool.h"
#include "mining/apriori.h"

namespace minerule::mining {

namespace {

size_t PairBucket(ItemId a, ItemId b, size_t num_buckets) {
  // Order-independent (inputs are sorted a < b), cheap mixing.
  uint64_t h = (static_cast<uint64_t>(a) << 32) ^ static_cast<uint64_t>(b);
  h *= 0x9e3779b97f4a7c15ull;
  h ^= h >> 29;
  return static_cast<size_t>(h % num_buckets);
}

}  // namespace

Result<std::vector<FrequentItemset>> DhpMiner::Mine(
    const TransactionDb& db, int64_t min_group_count, int64_t max_size,
    SimpleMinerStats* stats) {
  if (num_buckets_ <= 0) {
    return Status::InvalidArgument("DHP bucket count must be positive");
  }
  const size_t buckets = static_cast<size_t>(num_buckets_);

  // Pass 1: count singletons (via the vertical index) and hash all pairs.
  // The hashing scan is split into transaction ranges with one bucket table
  // each; summing the tables in range order reproduces the serial counts.
  const size_t n = db.num_transactions();
  const size_t chunks = ParallelChunks(n, num_threads_);
  std::vector<int64_t> bucket_counts(buckets, 0);
  auto hash_range = [&](size_t begin, size_t end,
                        std::vector<int64_t>* table) {
    for (size_t t = begin; t < end; ++t) {
      const Itemset& txn = db.transactions()[t];
      for (size_t i = 0; i < txn.size(); ++i) {
        for (size_t j = i + 1; j < txn.size(); ++j) {
          ++(*table)[PairBucket(txn[i], txn[j], buckets)];
        }
      }
    }
  };
  if (chunks <= 1) {
    hash_range(0, n, &bucket_counts);
  } else {
    std::vector<std::vector<int64_t>> partial(chunks);
    ParallelFor(n, num_threads_, [&](size_t chunk, size_t begin, size_t end) {
      partial[chunk].assign(buckets, 0);
      hash_range(begin, end, &partial[chunk]);
    });
    for (const std::vector<int64_t>& part : partial) {
      for (size_t b = 0; b < buckets; ++b) bucket_counts[b] += part[b];
    }
  }
  std::vector<FrequentItemset> level = FrequentSingletons(db, min_group_count);
  if (stats != nullptr) {
    stats->passes = 1;
    stats->candidates_per_level.push_back(
        static_cast<int64_t>(db.items().size()));
    stats->large_per_level.push_back(static_cast<int64_t>(level.size()));
  }

  std::vector<FrequentItemset> result(level.begin(), level.end());
  if (level.empty() || max_size == 1) {
    return result;
  }

  // Pass 2: candidate pairs filtered through the hash table.
  std::vector<Itemset> pair_candidates;
  int64_t unfiltered_pairs = 0;
  for (size_t i = 0; i < level.size(); ++i) {
    for (size_t j = i + 1; j < level.size(); ++j) {
      ++unfiltered_pairs;
      const ItemId a = level[i].items[0];
      const ItemId b = level[j].items[0];
      if (bucket_counts[PairBucket(a, b, buckets)] >= min_group_count) {
        pair_candidates.push_back(Itemset{a, b});
      }
    }
  }
  if (stats != nullptr) {
    stats->dhp_unfiltered_pairs = unfiltered_pairs;
    stats->dhp_filtered_pairs = static_cast<int64_t>(pair_candidates.size());
  }
  std::vector<int64_t> counts =
      CountCandidatesHorizontally(db, pair_candidates, num_threads_);
  std::vector<FrequentItemset> pairs;
  for (size_t i = 0; i < pair_candidates.size(); ++i) {
    if (counts[i] >= min_group_count) {
      pairs.push_back({std::move(pair_candidates[i]), counts[i]});
    }
  }
  SortFrequentItemsets(&pairs);
  if (stats != nullptr) {
    ++stats->passes;
    stats->candidates_per_level.push_back(
        static_cast<int64_t>(pair_candidates.size()));
    stats->large_per_level.push_back(static_cast<int64_t>(pairs.size()));
  }
  result.insert(result.end(), pairs.begin(), pairs.end());
  level = std::move(pairs);

  // Levels >= 3: plain Apriori.
  while (!level.empty()) {
    if (max_size >= 0 &&
        static_cast<int64_t>(level[0].items.size()) >= max_size) {
      break;
    }
    std::vector<Itemset> prev;
    prev.reserve(level.size());
    for (const FrequentItemset& fi : level) prev.push_back(fi.items);
    std::vector<Itemset> candidates = GenerateCandidates(prev);
    if (candidates.empty()) break;
    std::vector<int64_t> level_counts =
        CountCandidatesHorizontally(db, candidates, num_threads_);
    std::vector<FrequentItemset> next;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (level_counts[i] >= min_group_count) {
        next.push_back({std::move(candidates[i]), level_counts[i]});
      }
    }
    SortFrequentItemsets(&next);
    if (stats != nullptr) {
      ++stats->passes;
      stats->candidates_per_level.push_back(
          static_cast<int64_t>(candidates.size()));
      stats->large_per_level.push_back(static_cast<int64_t>(next.size()));
    }
    result.insert(result.end(), next.begin(), next.end());
    level = std::move(next);
  }
  SortFrequentItemsets(&result);
  return result;
}

}  // namespace minerule::mining
