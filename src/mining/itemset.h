#ifndef MINERULE_MINING_ITEMSET_H_
#define MINERULE_MINING_ITEMSET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace minerule::mining {

/// Encoded item identifier (a Bid/Hid minted by the preprocessor's
/// sequences). The core operator never sees anything but these integers —
/// that is the algorithm-interoperability boundary of the architecture.
using ItemId = int32_t;

/// Encoded group identifier (a Gid).
using Gid = int32_t;

/// Encoded cluster identifier (a Cid); kNoCluster when the statement has no
/// CLUSTER BY clause (the whole group is a single implicit cluster).
using Cid = int32_t;
inline constexpr Cid kNoCluster = 0;

/// A set of items, kept sorted ascending and duplicate-free.
using Itemset = std::vector<ItemId>;

/// True if `items` is strictly ascending (the Itemset invariant).
bool IsCanonical(const Itemset& items);

/// Sorts and deduplicates in place, establishing the invariant.
void Canonicalize(Itemset* items);

/// True if `sub` ⊆ `super` (both canonical). Linear merge.
bool IsSubset(const Itemset& sub, const Itemset& super);

/// True if the two canonical sets share their first k elements.
bool SharesPrefix(const Itemset& a, const Itemset& b, size_t k);

/// Union of a canonical set with one extra item (which must not be present).
Itemset WithItem(const Itemset& base, ItemId extra);

/// All subsets of `items` with exactly `k` elements, canonical order.
std::vector<Itemset> SubsetsOfSize(const Itemset& items, size_t k);

/// "{3, 7, 12}" — for logs and test failure messages.
std::string ItemsetToString(const Itemset& items);

/// FNV-style hash for itemsets, for unordered containers.
struct ItemsetHash {
  size_t operator()(const Itemset& items) const;
};

}  // namespace minerule::mining

#endif  // MINERULE_MINING_ITEMSET_H_
