#include "mining/simple_miner.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/string_util.h"
#include "mining/apriori.h"
#include "mining/apriori_tid.h"
#include "mining/dhp.h"
#include "mining/gidlist_miner.h"
#include "mining/partition.h"
#include "mining/reference_miner.h"
#include "mining/sampling.h"

namespace minerule::mining {

const char* SimpleAlgorithmName(SimpleAlgorithm algorithm) {
  switch (algorithm) {
    case SimpleAlgorithm::kApriori:
      return "apriori";
    case SimpleAlgorithm::kAprioriTid:
      return "apriori_tid";
    case SimpleAlgorithm::kGidList:
      return "gidlist";
    case SimpleAlgorithm::kDhp:
      return "dhp";
    case SimpleAlgorithm::kPartition:
      return "partition";
    case SimpleAlgorithm::kSampling:
      return "sampling";
    case SimpleAlgorithm::kReference:
      return "reference";
    case SimpleAlgorithm::kAuto:
      return "auto";
  }
  return "unknown";
}

Result<SimpleAlgorithm> SimpleAlgorithmFromName(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "apriori") return SimpleAlgorithm::kApriori;
  if (lower == "apriori_tid" || lower == "aprioritid") {
    return SimpleAlgorithm::kAprioriTid;
  }
  if (lower == "gidlist") return SimpleAlgorithm::kGidList;
  if (lower == "dhp") return SimpleAlgorithm::kDhp;
  if (lower == "partition") return SimpleAlgorithm::kPartition;
  if (lower == "sampling") return SimpleAlgorithm::kSampling;
  if (lower == "reference") return SimpleAlgorithm::kReference;
  if (lower == "auto") return SimpleAlgorithm::kAuto;
  return Status::InvalidArgument("unknown mining algorithm: " + name);
}

SimpleAlgorithm ChooseSimpleAlgorithm(const TransactionDb& db,
                                      int64_t min_group_count) {
  const size_t n = db.num_transactions();
  const size_t m = db.items().size();
  if (n == 0 || m == 0) return SimpleAlgorithm::kGidList;
  // Exact per-item supports are free: the vertical index is already built.
  int64_t occurrences = 0;
  std::vector<int64_t> frequent;
  for (ItemId item : db.items()) {
    const int64_t support = static_cast<int64_t>(db.gid_list(item).size());
    occurrences += support;
    if (support >= min_group_count) frequent.push_back(support);
  }
  const double density = static_cast<double>(occurrences) /
                         (static_cast<double>(n) * static_cast<double>(m));
  // Sparse sources: the paper's gid-list scheme dominates the whole pool
  // (measured ~3-10x vs every member at 20k and 100k transactions) — short
  // lists make intersections cheap at every lattice depth.
  if (density < 0.15 || m < 8 || frequent.empty()) {
    return SimpleAlgorithm::kGidList;
  }
  // Dense source. Estimate how many item pairs stay frequent assuming
  // independence: support(ij) ~ support(i) * support(j) / n. Sorted
  // descending, the count can stop at the first i whose best partner
  // already fails the threshold.
  std::sort(frequent.begin(), frequent.end(), std::greater<int64_t>());
  const double threshold = static_cast<double>(min_group_count) *
                           static_cast<double>(n);
  int64_t est_pairs = 0;
  for (size_t i = 0; i + 1 < frequent.size(); ++i) {
    const double si = static_cast<double>(frequent[i]);
    if (si * static_cast<double>(frequent[i + 1]) < threshold) break;
    for (size_t j = i + 1; j < frequent.size(); ++j) {
      if (si * static_cast<double>(frequent[j]) < threshold) break;
      ++est_pairs;
    }
  }
  // Shallow lattice (fewer frequent pairs than frequent items): the cost is
  // dominated by counting passes over dense horizontal data, where DHP's
  // hash filter wins ~10x. A deep lattice flips it — intersections shrink
  // with depth while horizontal re-scans do not — back to gid-lists.
  const bool shallow = est_pairs < static_cast<int64_t>(frequent.size());
  return shallow ? SimpleAlgorithm::kDhp : SimpleAlgorithm::kGidList;
}

std::unique_ptr<FrequentItemsetMiner> CreateMiner(
    SimpleAlgorithm algorithm, const SimpleMinerOptions& options) {
  switch (algorithm) {
    case SimpleAlgorithm::kApriori:
      return std::make_unique<AprioriMiner>(options.num_threads);
    case SimpleAlgorithm::kAprioriTid:
      return std::make_unique<AprioriTidMiner>();
    case SimpleAlgorithm::kGidList:
      return std::make_unique<GidListMiner>();
    case SimpleAlgorithm::kDhp:
      return std::make_unique<DhpMiner>(options.dhp_buckets,
                                        options.num_threads);
    case SimpleAlgorithm::kPartition:
      return std::make_unique<PartitionMiner>(options.partition_count,
                                              options.num_threads);
    case SimpleAlgorithm::kSampling:
      return std::make_unique<SamplingMiner>(
          options.sample_rate, options.sample_lowering, options.seed);
    case SimpleAlgorithm::kReference:
      return std::make_unique<ReferenceMiner>();
    case SimpleAlgorithm::kAuto:
      // kAuto is resolved against the database shape before a miner is
      // constructed; a caller without a database gets the paper's scheme.
      return std::make_unique<GidListMiner>();
  }
  return nullptr;
}

void SortItemsets(std::vector<Itemset>* itemsets) {
  std::sort(itemsets->begin(), itemsets->end());
}

void SortFrequentItemsets(std::vector<FrequentItemset>* itemsets) {
  std::sort(itemsets->begin(), itemsets->end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.items < b.items;
            });
}

std::vector<Itemset> GenerateCandidates(
    const std::vector<Itemset>& prev_level) {
  std::vector<Itemset> candidates;
  if (prev_level.empty()) return candidates;
  const size_t k = prev_level[0].size();

  std::unordered_set<Itemset, ItemsetHash> prev_set(prev_level.begin(),
                                                    prev_level.end());

  // Join step: a and b share the first k-1 items and differ in the last.
  for (size_t i = 0; i < prev_level.size(); ++i) {
    for (size_t j = i + 1; j < prev_level.size(); ++j) {
      if (!SharesPrefix(prev_level[i], prev_level[j], k - 1)) break;
      Itemset candidate = prev_level[i];
      candidate.push_back(prev_level[j].back());
      // Prune step: every k-subset must be in the previous level.
      bool keep = true;
      for (size_t drop = 0; drop + 2 < candidate.size() && keep; ++drop) {
        // Subsets formed by dropping one of the first k-1 items; dropping
        // either of the last two reproduces the parents, which exist.
        Itemset subset;
        subset.reserve(k);
        for (size_t m = 0; m < candidate.size(); ++m) {
          if (m != drop) subset.push_back(candidate[m]);
        }
        if (prev_set.find(subset) == prev_set.end()) keep = false;
      }
      if (keep) candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

int64_t MinGroupCount(double min_support, int64_t total_groups) {
  if (min_support <= 0.0) return 1;
  const double raw = min_support * static_cast<double>(total_groups);
  int64_t count = static_cast<int64_t>(std::ceil(raw - 1e-9));
  return std::max<int64_t>(count, 1);
}

Result<std::vector<MinedRule>> MineSimpleRules(
    const TransactionDb& db, double min_support, double min_confidence,
    const CardinalityConstraint& body_card,
    const CardinalityConstraint& head_card, SimpleAlgorithm algorithm,
    const SimpleMinerOptions& options, SimpleMinerStats* stats) {
  const int64_t min_count = MinGroupCount(min_support, db.total_groups());
  if (algorithm == SimpleAlgorithm::kAuto) {
    algorithm = ChooseSimpleAlgorithm(db, min_count);
  }
  std::unique_ptr<FrequentItemsetMiner> miner = CreateMiner(algorithm, options);
  if (miner == nullptr) {
    return Status::InvalidArgument("bad mining algorithm");
  }
  int64_t max_size = -1;
  if (body_card.bound() >= 0 && head_card.bound() >= 0) {
    max_size = body_card.bound() + head_card.bound();
  }
  MR_ASSIGN_OR_RETURN(std::vector<FrequentItemset> itemsets,
                      miner->Mine(db, min_count, max_size, stats));
  return BuildRulesFromItemsets(itemsets, min_count, min_confidence,
                                body_card, head_card);
}

}  // namespace minerule::mining
