#ifndef MINERULE_MINING_GENERAL_MINER_H_
#define MINERULE_MINING_GENERAL_MINER_H_

#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "mining/rule.h"

namespace minerule::mining {

/// One (group, body-cluster, head-cluster) occurrence of a rule. A rule is
/// supported by a group iff at least one valid cluster pair covers all its
/// body items (in the body cluster) and all its head items (in the head
/// cluster) — §2 step 5: "all cluster pairs contribute to the evaluation of
/// support". Statements without CLUSTER BY use the single implicit cluster
/// kNoCluster for both sides.
struct Occurrence {
  Gid gid = 0;
  Cid bcid = kNoCluster;
  Cid hcid = kNoCluster;

  friend bool operator==(const Occurrence&, const Occurrence&) = default;
  friend auto operator<=>(const Occurrence&, const Occurrence&) = default;
};

/// Sorted, duplicate-free list of occurrences.
using OccurrenceList = std::vector<Occurrence>;

OccurrenceList IntersectOccurrences(const OccurrenceList& a,
                                    const OccurrenceList& b);

/// Number of distinct group ids in a sorted occurrence list.
int64_t CountDistinctGids(const OccurrenceList& occs);

/// The encoded input of the general core operator (§4.3.2). Built by the
/// kernel from CodedSourceB/CodedSourceH, Clusters/ClusterCouples and
/// InputRules; the miner itself never sees attribute names or conditions.
struct GeneralInput {
  struct Cluster {
    Cid cid = kNoCluster;
    Itemset body_items;  // encoded items available for the body role
    Itemset head_items;  // ... for the head role (== body_items when !H)
  };
  struct Group {
    Gid gid = 0;
    std::vector<Cluster> clusters;
    /// Valid (body cid, head cid) pairs for this group; used only when
    /// `all_pairs` is false (cluster condition present, K true).
    std::vector<std::pair<Cid, Cid>> couples;
  };

  std::vector<Group> groups;
  bool all_pairs = true;  // K false: every ordered cluster pair is valid

  /// H directive: body and head use distinct encodings; identical ids on
  /// the two sides then do NOT denote the same item, so body/head overlap
  /// is not excluded.
  bool distinct_head_encoding = false;

  int64_t total_groups = 0;  // Q1 count (support denominator)

  /// M directive: elementary 1×1 rules were built in SQL (Q8..Q10); when
  /// set, the miner starts from these instead of forming the cartesian
  /// product itself.
  bool has_input_rules = false;
  struct ElementaryOccurrence {
    Gid gid;
    Cid bcid;
    Cid hcid;
    ItemId bid;
    ItemId hid;
  };
  std::vector<ElementaryOccurrence> input_rules;
};

/// Counters for the benchmark harness.
struct GeneralMinerStats {
  int64_t elementary_rules = 0;       // large 1×1 rules
  int64_t elementary_candidates = 0;  // before the support prune
  struct SetStat {
    int body_size;
    int head_size;
    int64_t candidates;
    int64_t kept;
    bool from_body_extension;  // which parent was chosen (§4.3.2)
  };
  std::vector<SetStat> sets;
  int64_t body_supports_computed = 0;

  /// Lattice cells whose rule sets were actually computed. Cells the
  /// level-wise walk never reached (both parents empty, or outside the
  /// cardinality bounds) are the pruned complement.
  int64_t cells_evaluated = 0;
};

/// The general core processing algorithm (§4.3.2): starting from the set of
/// large elementary rules, grows a lattice of m×n rule sets — the left child
/// extends the body, the right child the head — pruning by support at every
/// set and choosing, for each (m, n), the parent with fewer rules.
/// Confidence divides rule support by the body's support over *all* body
/// clusters (§2 step 5).
/// Within one lattice level the (m, n) cells are independent — each one
/// reads only level-(m+n-1) parents — so they are evaluated concurrently on
/// the shared pool (num_threads workers, <= 0 = hardware); results and
/// stats are committed in cell order, keeping the output bit-identical to
/// the serial descent.
class GeneralMiner {
 public:
  explicit GeneralMiner(GeneralInput input, int num_threads = 1);

  Result<std::vector<MinedRule>> Mine(double min_support,
                                      double min_confidence,
                                      const CardinalityConstraint& body_card,
                                      const CardinalityConstraint& head_card,
                                      GeneralMinerStats* stats);

 private:
  struct GeneralRule {
    Itemset body;
    Itemset head;
    OccurrenceList occs;
    int64_t group_count = 0;
  };
  using RuleSet = std::vector<GeneralRule>;

  /// Builds the pruned 1×1 rule set (from input_rules or the per-group
  /// cartesian product over valid cluster pairs).
  RuleSet BuildElementaryRules(int64_t min_group_count,
                               GeneralMinerStats* stats);

  /// (m+1, n) from (m, n): join rules sharing head and an m−1 body prefix.
  RuleSet ExtendBody(const RuleSet& parent, int64_t min_group_count,
                     int64_t* candidates);
  /// (m, n+1) from (m, n): join rules sharing body and an n−1 head prefix.
  RuleSet ExtendHead(const RuleSet& parent, int64_t min_group_count,
                     int64_t* candidates);

  /// Support of a body itemset: distinct groups with all body items inside
  /// one body cluster ("all body clusters are used for computing
  /// confidence"). Memoized.
  int64_t BodySupport(const Itemset& body, GeneralMinerStats* stats);

  GeneralInput input_;
  int num_threads_;
  /// Per-item body presence as sorted (gid, cid) pairs.
  std::unordered_map<ItemId, std::vector<std::pair<Gid, Cid>>> body_presence_;
  std::unordered_map<Itemset, int64_t, ItemsetHash> body_support_cache_;
};

}  // namespace minerule::mining

#endif  // MINERULE_MINING_GENERAL_MINER_H_
