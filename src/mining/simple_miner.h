#ifndef MINERULE_MINING_SIMPLE_MINER_H_
#define MINERULE_MINING_SIMPLE_MINER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "mining/rule.h"
#include "mining/transaction_db.h"

namespace minerule::mining {

/// The pool of interchangeable simple-core algorithms (§3 "the core
/// operator can be constituted of a pool of mining algorithms").
enum class SimpleAlgorithm {
  kApriori,    // Agrawal & Srikant, VLDB'94 — horizontal counting
  kAprioriTid, // Agrawal & Srikant, VLDB'94 — re-encoded transactions
  kGidList,    // the paper's described scheme: gid-list intersection
  kDhp,        // Park, Chen & Yu, SIGMOD'95 — hash-based pass-2 pruning
  kPartition,  // Savasere, Omiecinski & Navathe, VLDB'95
  kSampling,   // Toivonen, VLDB'96 — sample + negative border + verify
  kReference,  // brute-force enumeration, for property tests only
  kAuto,       // pick a pool member from the source shape (DESIGN.md §14)
};

const char* SimpleAlgorithmName(SimpleAlgorithm algorithm);
Result<SimpleAlgorithm> SimpleAlgorithmFromName(const std::string& name);

/// Resolves kAuto: picks a pool member from the encoded source's shape.
/// Measured on uniform and pattern (Quest) workloads: the gid-list scheme
/// dominates sparse sources and deep frequent-itemset lattices at every
/// size, while DHP wins dense sources whose lattice stays shallow (few
/// frequent pairs) by ~10x, because there the cost is raw counting passes
/// rather than lattice exploration. Shallowness is estimated from the
/// per-item supports under an independence assumption — O(items^2) on the
/// frequent items, O(occurrences) overall. Every pool member returns the
/// same itemsets, so this is a pure performance choice.
SimpleAlgorithm ChooseSimpleAlgorithm(const TransactionDb& db,
                                      int64_t min_group_count);

/// Tuning knobs; the defaults match the cited papers' usual settings at the
/// scale of our benchmarks.
struct SimpleMinerOptions {
  int dhp_buckets = 1 << 16;    // DHP hash table size
  int partition_count = 4;      // Partition: number of slices
  double sample_rate = 0.15;    // Sampling: fraction of groups sampled
  double sample_lowering = 0.8; // Sampling: threshold lowering factor
  uint64_t seed = 42;           // Sampling: PRNG seed

  /// Worker threads for the parallel miners (Apriori/DHP counting,
  /// Partition slices), drawn from the shared pool. <= 0 means hardware
  /// concurrency; 1 reproduces the serial execution exactly. Results are
  /// bit-identical at every setting (enforced by the differential tests).
  int num_threads = 0;
};

/// Execution counters exposed for the benchmark harness and the run trace.
struct SimpleMinerStats {
  int passes = 0;                           // database passes performed
  std::vector<int64_t> candidates_per_level;
  std::vector<int64_t> large_per_level;
  bool sampling_needed_full_pass = false;   // Toivonen: a miss occurred

  // DHP: size of pass-2 candidate space before / after the hash filter.
  // The filter hit rate is 1 - filtered/unfiltered.
  int64_t dhp_unfiltered_pairs = 0;
  int64_t dhp_filtered_pairs = 0;

  // Partition: transactions per slice (slice boundaries are group-count
  // based, so sizes differ by at most one).
  std::vector<int64_t> partition_slice_sizes;
};

/// Interface shared by all pool members. Mine() returns *all* itemsets with
/// group count >= min_group_count, of size <= max_size (max_size < 0 means
/// unbounded). Every implementation must return exactly the same set (this
/// is enforced by parameterized tests), which is what makes the pool
/// interchangeable behind the core-operator boundary.
class FrequentItemsetMiner {
 public:
  virtual ~FrequentItemsetMiner() = default;

  virtual const char* name() const = 0;

  virtual Result<std::vector<FrequentItemset>> Mine(
      const TransactionDb& db, int64_t min_group_count, int64_t max_size,
      SimpleMinerStats* stats) = 0;
};

/// Factory over the pool.
std::unique_ptr<FrequentItemsetMiner> CreateMiner(
    SimpleAlgorithm algorithm, const SimpleMinerOptions& options = {});

/// Shared helper: Apriori candidate generation — joins pairs of k-itemsets
/// sharing a (k−1)-prefix and prunes candidates with an infrequent
/// k-subset. `prev_level` must be sorted lexicographically.
std::vector<Itemset> GenerateCandidates(const std::vector<Itemset>& prev_level);

/// Sorts itemsets lexicographically (the order GenerateCandidates expects
/// and the canonical order for test comparison).
void SortItemsets(std::vector<Itemset>* itemsets);

/// Sorts FrequentItemsets lexicographically by their items.
void SortFrequentItemsets(std::vector<FrequentItemset>* itemsets);

/// Convenience: mine + build rules in one call (the simple core processing
/// of §4.3.1 end to end, on encoded data).
Result<std::vector<MinedRule>> MineSimpleRules(
    const TransactionDb& db, double min_support, double min_confidence,
    const CardinalityConstraint& body_card,
    const CardinalityConstraint& head_card, SimpleAlgorithm algorithm,
    const SimpleMinerOptions& options = {}, SimpleMinerStats* stats = nullptr);

/// Threshold conversion shared by all components: the smallest group count
/// satisfying `support >= min_support` given the Q1 group total.
int64_t MinGroupCount(double min_support, int64_t total_groups);

}  // namespace minerule::mining

#endif  // MINERULE_MINING_SIMPLE_MINER_H_
