#include "mining/gidlist_miner.h"

#include <algorithm>
#include <unordered_map>

#include "common/trace.h"

namespace minerule::mining {

Result<std::vector<FrequentItemset>> GidListMiner::Mine(
    const TransactionDb& db, int64_t min_group_count, int64_t max_size,
    SimpleMinerStats* stats) {
  struct Entry {
    Itemset items;
    GidList gids;
  };

  std::vector<Entry> level;
  for (ItemId item : db.items()) {
    const GidList& gids = db.gid_list(item);
    if (static_cast<int64_t>(gids.size()) >= min_group_count) {
      level.push_back({Itemset{item}, gids});
    }
  }
  if (stats != nullptr) {
    stats->passes = 1;  // only the vertical build touches the data
    stats->candidates_per_level.push_back(
        static_cast<int64_t>(db.items().size()));
    stats->large_per_level.push_back(static_cast<int64_t>(level.size()));
  }

  std::vector<FrequentItemset> result;
  while (!level.empty()) {
    ScopedSpan level_span("core.gidlist.level", "core",
                          static_cast<int64_t>(level[0].items.size()));
    for (const Entry& e : level) {
      result.push_back({e.items, static_cast<int64_t>(e.gids.size())});
    }
    if (max_size >= 0 &&
        static_cast<int64_t>(level[0].items.size()) >= max_size) {
      break;
    }

    // Candidate generation mirrors GenerateCandidates but intersects the
    // parents' gid lists instead of re-scanning the database.
    std::unordered_map<Itemset, size_t, ItemsetHash> index;
    index.reserve(level.size());
    for (size_t i = 0; i < level.size(); ++i) index.emplace(level[i].items, i);

    const size_t k = level[0].items.size();
    std::vector<Entry> next;
    int64_t candidate_count = 0;
    for (size_t i = 0; i < level.size(); ++i) {
      for (size_t j = i + 1; j < level.size(); ++j) {
        if (!SharesPrefix(level[i].items, level[j].items, k - 1)) break;
        Itemset candidate = level[i].items;
        candidate.push_back(level[j].items.back());
        bool keep = true;
        for (size_t drop = 0; drop + 2 < candidate.size() && keep; ++drop) {
          Itemset subset;
          subset.reserve(k);
          for (size_t m = 0; m < candidate.size(); ++m) {
            if (m != drop) subset.push_back(candidate[m]);
          }
          if (index.find(subset) == index.end()) keep = false;
        }
        if (!keep) continue;
        ++candidate_count;
        GidList gids = IntersectGidLists(level[i].gids, level[j].gids);
        if (static_cast<int64_t>(gids.size()) >= min_group_count) {
          next.push_back({std::move(candidate), std::move(gids)});
        }
      }
    }
    std::sort(next.begin(), next.end(),
              [](const Entry& a, const Entry& b) { return a.items < b.items; });
    if (stats != nullptr) {
      stats->candidates_per_level.push_back(candidate_count);
      stats->large_per_level.push_back(static_cast<int64_t>(next.size()));
    }
    level = std::move(next);
  }
  SortFrequentItemsets(&result);
  return result;
}

}  // namespace minerule::mining
