#ifndef MINERULE_MINING_APRIORI_TID_H_
#define MINERULE_MINING_APRIORI_TID_H_

#include "mining/simple_miner.h"

namespace minerule::mining {

/// AprioriTid — the second algorithm of Agrawal & Srikant [VLDB'94]. After
/// the first pass it never rescans the database: each transaction is
/// replaced by the set of level-k candidates it contains (C̄_k), computed
/// from C̄_(k-1) by joining pairs of contained (k−1)-itemsets. Transactions
/// whose candidate set becomes empty drop out entirely, which is what makes
/// the algorithm fast at the deep levels where the encoded set shrinks.
class AprioriTidMiner : public FrequentItemsetMiner {
 public:
  const char* name() const override { return "apriori_tid"; }

  Result<std::vector<FrequentItemset>> Mine(const TransactionDb& db,
                                            int64_t min_group_count,
                                            int64_t max_size,
                                            SimpleMinerStats* stats) override;
};

}  // namespace minerule::mining

#endif  // MINERULE_MINING_APRIORI_TID_H_
