#include "mining/reference_miner.h"

namespace minerule::mining {

Result<std::vector<FrequentItemset>> ReferenceMiner::Mine(
    const TransactionDb& db, int64_t min_group_count, int64_t max_size,
    SimpleMinerStats* stats) {
  const std::vector<ItemId>& items = db.items();
  if (items.size() > kMaxItems) {
    return Status::InvalidArgument(
        "ReferenceMiner is a test oracle; refusing " +
        std::to_string(items.size()) + " items (max " +
        std::to_string(kMaxItems) + ")");
  }
  std::vector<FrequentItemset> result;
  const uint32_t limit = 1u << items.size();
  for (uint32_t mask = 1; mask < limit; ++mask) {
    Itemset candidate;
    for (size_t i = 0; i < items.size(); ++i) {
      if (mask & (1u << i)) candidate.push_back(items[i]);
    }
    if (max_size >= 0 && static_cast<int64_t>(candidate.size()) > max_size) {
      continue;
    }
    int64_t count = 0;
    for (const Itemset& txn : db.transactions()) {
      if (IsSubset(candidate, txn)) ++count;
    }
    if (count >= min_group_count) {
      result.push_back({std::move(candidate), count});
    }
  }
  if (stats != nullptr) {
    stats->passes = static_cast<int>(limit);  // honesty in advertising
  }
  SortFrequentItemsets(&result);
  return result;
}

}  // namespace minerule::mining
