#ifndef MINERULE_MINING_GID_LIST_H_
#define MINERULE_MINING_GID_LIST_H_

#include <vector>

#include "mining/itemset.h"

namespace minerule::mining {

/// A sorted list of the group identifiers containing some itemset. This is
/// the support-counting structure the paper describes for the simple core
/// ("counting elements in an associated list that contains identifiers of
/// groups in which the itemset is present").
using GidList = std::vector<Gid>;

/// Sorted-merge intersection.
GidList IntersectGidLists(const GidList& a, const GidList& b);

/// Size of the intersection without materializing it.
size_t IntersectionSize(const GidList& a, const GidList& b);

}  // namespace minerule::mining

#endif  // MINERULE_MINING_GID_LIST_H_
