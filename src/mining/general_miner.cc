#include "mining/general_miner.h"

#include <algorithm>
#include <map>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "mining/gid_list.h"
#include "mining/simple_miner.h"

namespace minerule::mining {

OccurrenceList IntersectOccurrences(const OccurrenceList& a,
                                    const OccurrenceList& b) {
  OccurrenceList out;
  out.reserve(std::min(a.size(), b.size()));
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      out.push_back(a[i]);
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

int64_t CountDistinctGids(const OccurrenceList& occs) {
  int64_t count = 0;
  Gid last = -1;
  bool first = true;
  for (const Occurrence& occ : occs) {
    if (first || occ.gid != last) {
      ++count;
      last = occ.gid;
      first = false;
    }
  }
  return count;
}

namespace {

/// Key for looking up a rule by (body, head) within one rule set.
struct RuleKey {
  const Itemset* body;
  const Itemset* head;
};
struct RuleKeyHash {
  size_t operator()(const RuleKey& key) const {
    ItemsetHash h;
    return h(*key.body) * 1315423911u ^ h(*key.head);
  }
};
struct RuleKeyEq {
  bool operator()(const RuleKey& a, const RuleKey& b) const {
    return *a.body == *b.body && *a.head == *b.head;
  }
};

void SortOccurrences(OccurrenceList* occs) {
  std::sort(occs->begin(), occs->end());
  occs->erase(std::unique(occs->begin(), occs->end()), occs->end());
}

}  // namespace

GeneralMiner::GeneralMiner(GeneralInput input, int num_threads)
    : input_(std::move(input)), num_threads_(num_threads) {
  // Body presence index (confidence denominator source). Groups iterate in
  // ascending gid order and clusters in ascending cid order, so each
  // per-item list comes out sorted.
  for (const GeneralInput::Group& group : input_.groups) {
    for (const GeneralInput::Cluster& cluster : group.clusters) {
      for (ItemId item : cluster.body_items) {
        body_presence_[item].emplace_back(group.gid, cluster.cid);
      }
    }
  }
  for (auto& [item, presence] : body_presence_) {
    std::sort(presence.begin(), presence.end());
    presence.erase(std::unique(presence.begin(), presence.end()),
                   presence.end());
  }
}

int64_t GeneralMiner::BodySupport(const Itemset& body,
                                  GeneralMinerStats* stats) {
  auto cached = body_support_cache_.find(body);
  if (cached != body_support_cache_.end()) return cached->second;

  std::vector<std::pair<Gid, Cid>> presence;
  bool first = true;
  for (ItemId item : body) {
    auto it = body_presence_.find(item);
    if (it == body_presence_.end()) {
      presence.clear();
      break;
    }
    if (first) {
      presence = it->second;
      first = false;
      continue;
    }
    std::vector<std::pair<Gid, Cid>> merged;
    merged.reserve(std::min(presence.size(), it->second.size()));
    std::set_intersection(presence.begin(), presence.end(),
                          it->second.begin(), it->second.end(),
                          std::back_inserter(merged));
    presence = std::move(merged);
    if (presence.empty()) break;
  }
  int64_t count = 0;
  Gid last = -1;
  bool first_gid = true;
  for (const auto& [gid, cid] : presence) {
    if (first_gid || gid != last) {
      ++count;
      last = gid;
      first_gid = false;
    }
  }
  body_support_cache_.emplace(body, count);
  if (stats != nullptr) ++stats->body_supports_computed;
  return count;
}

GeneralMiner::RuleSet GeneralMiner::BuildElementaryRules(
    int64_t min_group_count, GeneralMinerStats* stats) {
  // Accumulate occurrence lists per (bid, hid).
  std::map<std::pair<ItemId, ItemId>, OccurrenceList> occs;

  if (input_.has_input_rules) {
    for (const GeneralInput::ElementaryOccurrence& e : input_.input_rules) {
      occs[{e.bid, e.hid}].push_back({e.gid, e.bcid, e.hcid});
    }
  } else {
    for (const GeneralInput::Group& group : input_.groups) {
      // Index clusters by cid for couple lookup.
      std::map<Cid, const GeneralInput::Cluster*> by_cid;
      for (const GeneralInput::Cluster& cluster : group.clusters) {
        by_cid[cluster.cid] = &cluster;
      }
      auto emit_pair = [&](const GeneralInput::Cluster& bc,
                           const GeneralInput::Cluster& hc) {
        for (ItemId bid : bc.body_items) {
          for (ItemId hid : hc.head_items) {
            if (!input_.distinct_head_encoding && bid == hid) continue;
            occs[{bid, hid}].push_back({group.gid, bc.cid, hc.cid});
          }
        }
      };
      if (input_.all_pairs) {
        for (const GeneralInput::Cluster& bc : group.clusters) {
          for (const GeneralInput::Cluster& hc : group.clusters) {
            emit_pair(bc, hc);
          }
        }
      } else {
        for (const auto& [bcid, hcid] : group.couples) {
          auto b_it = by_cid.find(bcid);
          auto h_it = by_cid.find(hcid);
          if (b_it == by_cid.end() || h_it == by_cid.end()) continue;
          emit_pair(*b_it->second, *h_it->second);
        }
      }
    }
  }

  RuleSet elementary;
  if (stats != nullptr) {
    stats->elementary_candidates = static_cast<int64_t>(occs.size());
  }
  for (auto& [key, list] : occs) {
    SortOccurrences(&list);
    const int64_t group_count = CountDistinctGids(list);
    if (group_count < min_group_count) continue;
    GeneralRule rule;
    rule.body = Itemset{key.first};
    rule.head = Itemset{key.second};
    rule.occs = std::move(list);
    rule.group_count = group_count;
    elementary.push_back(std::move(rule));
  }
  if (stats != nullptr) {
    stats->elementary_rules = static_cast<int64_t>(elementary.size());
  }
  return elementary;  // map iteration order => sorted by (body, head)
}

GeneralMiner::RuleSet GeneralMiner::ExtendBody(const RuleSet& parent,
                                               int64_t min_group_count,
                                               int64_t* candidates) {
  // Group parent rules by head; rules within one head group are already
  // sorted by body (parent sets are kept sorted by (body, head) — we sort
  // by (head, body) locally).
  std::vector<const GeneralRule*> rules;
  rules.reserve(parent.size());
  for (const GeneralRule& r : parent) rules.push_back(&r);
  std::sort(rules.begin(), rules.end(),
            [](const GeneralRule* a, const GeneralRule* b) {
              if (a->head != b->head) return a->head < b->head;
              return a->body < b->body;
            });

  std::unordered_map<RuleKey, const GeneralRule*, RuleKeyHash, RuleKeyEq>
      parent_index;
  parent_index.reserve(parent.size());
  for (const GeneralRule& r : parent) {
    parent_index.emplace(RuleKey{&r.body, &r.head}, &r);
  }

  RuleSet next;
  const size_t m = parent.empty() ? 0 : parent[0].body.size();
  for (size_t i = 0; i < rules.size(); ++i) {
    for (size_t j = i + 1; j < rules.size(); ++j) {
      if (rules[i]->head != rules[j]->head) break;
      if (!SharesPrefix(rules[i]->body, rules[j]->body, m - 1)) break;
      Itemset body = rules[i]->body;
      body.push_back(rules[j]->body.back());
      // When body and head share one encoding, keep them disjoint.
      if (!input_.distinct_head_encoding &&
          IsSubset(Itemset{body.back()}, rules[i]->head)) {
        continue;
      }
      // Apriori prune: every m-subset of the new body (with this head)
      // must be a rule in the parent set.
      bool keep = true;
      for (size_t drop = 0; drop + 2 < body.size() && keep; ++drop) {
        Itemset sub;
        sub.reserve(m);
        for (size_t x = 0; x < body.size(); ++x) {
          if (x != drop) sub.push_back(body[x]);
        }
        if (parent_index.find(RuleKey{&sub, &rules[i]->head}) ==
            parent_index.end()) {
          keep = false;
        }
      }
      if (!keep) continue;
      if (candidates != nullptr) ++(*candidates);
      OccurrenceList occs =
          IntersectOccurrences(rules[i]->occs, rules[j]->occs);
      const int64_t group_count = CountDistinctGids(occs);
      if (group_count < min_group_count) continue;
      GeneralRule rule;
      rule.body = std::move(body);
      rule.head = rules[i]->head;
      rule.occs = std::move(occs);
      rule.group_count = group_count;
      next.push_back(std::move(rule));
    }
  }
  std::sort(next.begin(), next.end(),
            [](const GeneralRule& a, const GeneralRule& b) {
              if (a.body != b.body) return a.body < b.body;
              return a.head < b.head;
            });
  return next;
}

GeneralMiner::RuleSet GeneralMiner::ExtendHead(const RuleSet& parent,
                                               int64_t min_group_count,
                                               int64_t* candidates) {
  std::vector<const GeneralRule*> rules;
  rules.reserve(parent.size());
  for (const GeneralRule& r : parent) rules.push_back(&r);
  std::sort(rules.begin(), rules.end(),
            [](const GeneralRule* a, const GeneralRule* b) {
              if (a->body != b->body) return a->body < b->body;
              return a->head < b->head;
            });

  std::unordered_map<RuleKey, const GeneralRule*, RuleKeyHash, RuleKeyEq>
      parent_index;
  parent_index.reserve(parent.size());
  for (const GeneralRule& r : parent) {
    parent_index.emplace(RuleKey{&r.body, &r.head}, &r);
  }

  RuleSet next;
  const size_t n = parent.empty() ? 0 : parent[0].head.size();
  for (size_t i = 0; i < rules.size(); ++i) {
    for (size_t j = i + 1; j < rules.size(); ++j) {
      if (rules[i]->body != rules[j]->body) break;
      if (!SharesPrefix(rules[i]->head, rules[j]->head, n - 1)) break;
      Itemset head = rules[i]->head;
      head.push_back(rules[j]->head.back());
      if (!input_.distinct_head_encoding &&
          IsSubset(Itemset{head.back()}, rules[i]->body)) {
        continue;
      }
      bool keep = true;
      for (size_t drop = 0; drop + 2 < head.size() && keep; ++drop) {
        Itemset sub;
        sub.reserve(n);
        for (size_t x = 0; x < head.size(); ++x) {
          if (x != drop) sub.push_back(head[x]);
        }
        if (parent_index.find(RuleKey{&rules[i]->body, &sub}) ==
            parent_index.end()) {
          keep = false;
        }
      }
      if (!keep) continue;
      if (candidates != nullptr) ++(*candidates);
      OccurrenceList occs =
          IntersectOccurrences(rules[i]->occs, rules[j]->occs);
      const int64_t group_count = CountDistinctGids(occs);
      if (group_count < min_group_count) continue;
      GeneralRule rule;
      rule.body = rules[i]->body;
      rule.head = std::move(head);
      rule.occs = std::move(occs);
      rule.group_count = group_count;
      next.push_back(std::move(rule));
    }
  }
  std::sort(next.begin(), next.end(),
            [](const GeneralRule& a, const GeneralRule& b) {
              if (a.body != b.body) return a.body < b.body;
              return a.head < b.head;
            });
  return next;
}

Result<std::vector<MinedRule>> GeneralMiner::Mine(
    double min_support, double min_confidence,
    const CardinalityConstraint& body_card,
    const CardinalityConstraint& head_card, GeneralMinerStats* stats) {
  if (input_.total_groups <= 0) {
    return Status::InvalidArgument("total_groups must be positive");
  }
  const int64_t min_count = MinGroupCount(min_support, input_.total_groups);

  std::map<std::pair<int, int>, RuleSet> sets;
  sets[{1, 1}] = BuildElementaryRules(min_count, stats);

  const int64_t max_m = body_card.bound();
  const int64_t max_n = head_card.bound();

  // Level-by-level descent of the lattice; level = m + n. Every cell of one
  // level depends only on the previous level's sets, so the cells are
  // planned serially (the parent-choice heuristic reads `sets`) and then
  // extended concurrently; results are committed back in cell order.
  struct Cell {
    int m;
    int n;
    bool use_body;
    const RuleSet* parent;
    int64_t candidates = 0;
    RuleSet result;
  };
  for (int level = 3;; ++level) {
    ScopedSpan level_span("core.general.level", "core", level);
    GlobalMetrics().GetCounter("core.general.levels")->Increment();
    std::vector<Cell> cells;
    for (int m = 1; m < level; ++m) {
      const int n = level - m;
      if (m < 1 || n < 1) continue;
      if (max_m >= 0 && m > max_m) continue;
      if (max_n >= 0 && n > max_n) continue;

      auto body_parent = sets.find({m - 1, n});
      auto head_parent = sets.find({m, n - 1});
      const bool body_ok =
          m >= 2 && body_parent != sets.end() && !body_parent->second.empty();
      const bool head_ok =
          n >= 2 && head_parent != sets.end() && !head_parent->second.empty();
      if (!body_ok && !head_ok) continue;

      // §4.3.2: "the efficiency of the algorithm is maximized if, at each
      // step, we start from the set with lower cardinality".
      bool use_body;
      if (body_ok && head_ok) {
        use_body = body_parent->second.size() <= head_parent->second.size();
      } else {
        use_body = body_ok;
      }
      Cell cell;
      cell.m = m;
      cell.n = n;
      cell.use_body = use_body;
      cell.parent = use_body ? &body_parent->second : &head_parent->second;
      cells.push_back(std::move(cell));
    }

    ParallelFor(cells.size(), num_threads_,
                [&](size_t, size_t begin, size_t end) {
                  for (size_t c = begin; c < end; ++c) {
                    Cell& cell = cells[c];
                    cell.result =
                        cell.use_body
                            ? ExtendBody(*cell.parent, min_count,
                                         &cell.candidates)
                            : ExtendHead(*cell.parent, min_count,
                                         &cell.candidates);
                  }
                });

    bool produced_any = false;
    for (Cell& cell : cells) {
      if (stats != nullptr) {
        ++stats->cells_evaluated;
        stats->sets.push_back({cell.m, cell.n, cell.candidates,
                               static_cast<int64_t>(cell.result.size()),
                               cell.use_body});
      }
      if (!cell.result.empty()) produced_any = true;
      sets[{cell.m, cell.n}] = std::move(cell.result);
    }
    if (!produced_any) break;
    // Safety stop when both dimensions are bounded.
    if (max_m >= 0 && max_n >= 0 && level >= max_m + max_n) break;
  }

  // Emit rules within the cardinality window with sufficient confidence.
  std::vector<MinedRule> rules;
  for (const auto& [mn, set] : sets) {
    if (!body_card.Allows(static_cast<size_t>(mn.first)) ||
        !head_card.Allows(static_cast<size_t>(mn.second))) {
      continue;
    }
    for (const GeneralRule& rule : set) {
      const int64_t body_count = BodySupport(rule.body, stats);
      if (body_count <= 0) {
        return Status::Internal("rule body has zero support: " +
                                ItemsetToString(rule.body));
      }
      const double confidence = static_cast<double>(rule.group_count) /
                                static_cast<double>(body_count);
      if (confidence + 1e-12 < min_confidence) continue;
      MinedRule out;
      out.body = rule.body;
      out.head = rule.head;
      out.group_count = rule.group_count;
      out.body_group_count = body_count;
      rules.push_back(std::move(out));
    }
  }
  std::sort(rules.begin(), rules.end(), RuleLess);
  return rules;
}

}  // namespace minerule::mining
