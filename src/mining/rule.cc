#include "mining/rule.h"

#include <algorithm>
#include <unordered_map>

namespace minerule::mining {

std::string MinedRule::ToString() const {
  return ItemsetToString(body) + " => " + ItemsetToString(head);
}

bool RuleLess(const MinedRule& a, const MinedRule& b) {
  if (a.body != b.body) {
    return std::lexicographical_compare(a.body.begin(), a.body.end(),
                                        b.body.begin(), b.body.end());
  }
  return std::lexicographical_compare(a.head.begin(), a.head.end(),
                                      b.head.begin(), b.head.end());
}

std::vector<MinedRule> BuildRulesFromItemsets(
    const std::vector<FrequentItemset>& itemsets, int64_t min_group_count,
    double min_confidence, const CardinalityConstraint& body_card,
    const CardinalityConstraint& head_card) {
  std::unordered_map<Itemset, int64_t, ItemsetHash> counts;
  counts.reserve(itemsets.size());
  for (const FrequentItemset& fi : itemsets) {
    counts[fi.items] = fi.group_count;
  }

  std::vector<MinedRule> rules;
  for (const FrequentItemset& fi : itemsets) {
    if (fi.items.size() < 2) continue;
    if (fi.group_count < min_group_count) continue;
    // Head sizes compatible with both constraints.
    for (size_t head_size = 1; head_size < fi.items.size(); ++head_size) {
      if (!head_card.Allows(head_size)) continue;
      if (!body_card.Allows(fi.items.size() - head_size)) continue;
      for (Itemset& head : SubsetsOfSize(fi.items, head_size)) {
        Itemset body;
        body.reserve(fi.items.size() - head_size);
        std::set_difference(fi.items.begin(), fi.items.end(), head.begin(),
                            head.end(), std::back_inserter(body));
        auto it = counts.find(body);
        if (it == counts.end()) continue;  // body not mined (size cap)
        const int64_t body_count = it->second;
        const double confidence = static_cast<double>(fi.group_count) /
                                  static_cast<double>(body_count);
        if (confidence + 1e-12 < min_confidence) continue;
        MinedRule rule;
        rule.body = std::move(body);
        rule.head = std::move(head);
        rule.group_count = fi.group_count;
        rule.body_group_count = body_count;
        rules.push_back(std::move(rule));
      }
    }
  }
  std::sort(rules.begin(), rules.end(), RuleLess);
  return rules;
}

}  // namespace minerule::mining
