#ifndef MINERULE_MINING_GIDLIST_MINER_H_
#define MINERULE_MINING_GIDLIST_MINER_H_

#include "mining/simple_miner.h"

namespace minerule::mining {

/// The counting scheme the paper describes for its simple core (§4.3.1):
/// levelwise growth where each itemset carries the sorted list of group
/// identifiers containing it; the support of a new (k+1)-itemset is the
/// size of the intersection of its two parents' lists. No further database
/// passes are needed after the vertical layout is built (pass count 1).
class GidListMiner : public FrequentItemsetMiner {
 public:
  const char* name() const override { return "gidlist"; }

  Result<std::vector<FrequentItemset>> Mine(const TransactionDb& db,
                                            int64_t min_group_count,
                                            int64_t max_size,
                                            SimpleMinerStats* stats) override;
};

}  // namespace minerule::mining

#endif  // MINERULE_MINING_GIDLIST_MINER_H_
