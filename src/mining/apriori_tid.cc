#include "mining/apriori_tid.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "mining/apriori.h"

namespace minerule::mining {

namespace {

/// Hash for the (generator1, generator2) index pair of a candidate.
struct PairHash {
  size_t operator()(const std::pair<int32_t, int32_t>& p) const {
    return static_cast<size_t>(p.first) * 0x9e3779b9u ^
           static_cast<size_t>(p.second);
  }
};

}  // namespace

Result<std::vector<FrequentItemset>> AprioriTidMiner::Mine(
    const TransactionDb& db, int64_t min_group_count, int64_t max_size,
    SimpleMinerStats* stats) {
  std::vector<FrequentItemset> result;

  // Pass 1: frequent singletons and the initial encoded transactions
  // C̄_1 (indexes into the level-1 itemset list).
  std::vector<FrequentItemset> level = FrequentSingletons(db, min_group_count);
  if (stats != nullptr) {
    stats->passes = 1;
    stats->candidates_per_level.push_back(
        static_cast<int64_t>(db.items().size()));
    stats->large_per_level.push_back(static_cast<int64_t>(level.size()));
  }
  if (level.empty()) return result;
  result.insert(result.end(), level.begin(), level.end());

  std::unordered_map<ItemId, int32_t> item_index;
  for (size_t i = 0; i < level.size(); ++i) {
    item_index.emplace(level[i].items[0], static_cast<int32_t>(i));
  }
  // Encoded transactions: sorted indexes of contained level itemsets.
  std::vector<std::vector<int32_t>> encoded;
  encoded.reserve(db.num_transactions());
  for (const Itemset& txn : db.transactions()) {
    std::vector<int32_t> codes;
    for (ItemId item : txn) {
      auto it = item_index.find(item);
      if (it != item_index.end()) codes.push_back(it->second);
    }
    if (!codes.empty()) encoded.push_back(std::move(codes));
  }

  while (!level.empty()) {
    if (max_size >= 0 &&
        static_cast<int64_t>(level[0].items.size()) >= max_size) {
      break;
    }
    // Candidate generation (the usual join + prune), remembering each
    // candidate's generator pair (i, j) within the current level.
    std::vector<Itemset> prev;
    prev.reserve(level.size());
    for (const FrequentItemset& fi : level) prev.push_back(fi.items);
    std::unordered_set<Itemset, ItemsetHash> prev_set(prev.begin(),
                                                      prev.end());
    const size_t k = prev[0].size();

    std::vector<Itemset> candidates;
    std::unordered_map<std::pair<int32_t, int32_t>, int32_t, PairHash>
        generator_of;
    for (size_t i = 0; i < prev.size(); ++i) {
      for (size_t j = i + 1; j < prev.size(); ++j) {
        if (!SharesPrefix(prev[i], prev[j], k - 1)) break;
        Itemset candidate = prev[i];
        candidate.push_back(prev[j].back());
        bool keep = true;
        for (size_t drop = 0; drop + 2 < candidate.size() && keep; ++drop) {
          Itemset subset;
          subset.reserve(k);
          for (size_t m = 0; m < candidate.size(); ++m) {
            if (m != drop) subset.push_back(candidate[m]);
          }
          if (prev_set.find(subset) == prev_set.end()) keep = false;
        }
        if (!keep) continue;
        generator_of[{static_cast<int32_t>(i), static_cast<int32_t>(j)}] =
            static_cast<int32_t>(candidates.size());
        candidates.push_back(std::move(candidate));
      }
    }
    if (candidates.empty()) break;

    // Count via the encoded transactions; build C̄_k simultaneously.
    std::vector<int64_t> counts(candidates.size(), 0);
    std::vector<std::vector<int32_t>> next_encoded;
    next_encoded.reserve(encoded.size());
    for (const std::vector<int32_t>& codes : encoded) {
      std::vector<int32_t> next_codes;
      for (size_t a = 0; a < codes.size(); ++a) {
        for (size_t b = a + 1; b < codes.size(); ++b) {
          auto it = generator_of.find({codes[a], codes[b]});
          if (it != generator_of.end()) {
            ++counts[it->second];
            next_codes.push_back(it->second);
          }
        }
      }
      if (!next_codes.empty()) {
        std::sort(next_codes.begin(), next_codes.end());
        next_encoded.push_back(std::move(next_codes));
      }
    }

    // Prune to L_k and remap the encoded sets onto L_k indexes.
    std::vector<int32_t> remap(candidates.size(), -1);
    std::vector<FrequentItemset> next;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (counts[c] >= min_group_count) {
        remap[c] = static_cast<int32_t>(next.size());
        next.push_back({std::move(candidates[c]), counts[c]});
      }
    }
    // Candidates are generated in lexicographic order of (i, j) over a
    // lexicographically sorted level, which is itself lexicographic — but
    // only within a shared prefix; re-sort to be safe and rebuild remap.
    {
      std::vector<size_t> order(next.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return next[a].items < next[b].items;
      });
      std::vector<int32_t> position(next.size());
      for (size_t rank = 0; rank < order.size(); ++rank) {
        position[order[rank]] = static_cast<int32_t>(rank);
      }
      std::vector<FrequentItemset> sorted(next.size());
      for (size_t i = 0; i < next.size(); ++i) {
        sorted[position[i]] = std::move(next[i]);
      }
      next = std::move(sorted);
      for (int32_t& code : remap) {
        if (code >= 0) code = position[code];
      }
    }

    std::vector<std::vector<int32_t>> remapped;
    remapped.reserve(next_encoded.size());
    for (std::vector<int32_t>& codes : next_encoded) {
      std::vector<int32_t> kept;
      for (int32_t code : codes) {
        if (remap[code] >= 0) kept.push_back(remap[code]);
      }
      if (!kept.empty()) {
        std::sort(kept.begin(), kept.end());
        remapped.push_back(std::move(kept));
      }
    }
    encoded = std::move(remapped);

    if (stats != nullptr) {
      // No further database passes: counting used the in-memory encoding.
      stats->candidates_per_level.push_back(
          static_cast<int64_t>(candidates.size()));
      stats->large_per_level.push_back(static_cast<int64_t>(next.size()));
    }
    result.insert(result.end(), next.begin(), next.end());
    level = std::move(next);
  }
  SortFrequentItemsets(&result);
  return result;
}

}  // namespace minerule::mining
