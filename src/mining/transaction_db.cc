#include "mining/transaction_db.h"

#include <algorithm>
#include <map>

namespace minerule::mining {

TransactionDb TransactionDb::FromPairs(
    std::vector<std::pair<Gid, ItemId>> pairs, int64_t total_groups) {
  std::map<Gid, Itemset> by_group;
  for (const auto& [gid, item] : pairs) {
    by_group[gid].push_back(item);
  }
  TransactionDb db;
  db.total_groups_ = total_groups;
  db.gids_.reserve(by_group.size());
  db.transactions_.reserve(by_group.size());
  for (auto& [gid, items] : by_group) {
    Canonicalize(&items);
    db.gids_.push_back(gid);
    db.transactions_.push_back(std::move(items));
  }
  db.BuildIndexes();
  return db;
}

TransactionDb TransactionDb::FromTransactions(
    std::vector<Itemset> transactions, int64_t total_groups) {
  TransactionDb db;
  db.total_groups_ = total_groups;
  db.transactions_ = std::move(transactions);
  db.gids_.reserve(db.transactions_.size());
  for (size_t i = 0; i < db.transactions_.size(); ++i) {
    Canonicalize(&db.transactions_[i]);
    db.gids_.push_back(static_cast<Gid>(i));
  }
  db.BuildIndexes();
  return db;
}

void TransactionDb::BuildIndexes() {
  vertical_.clear();
  items_.clear();
  for (size_t t = 0; t < transactions_.size(); ++t) {
    for (ItemId item : transactions_[t]) {
      vertical_[item].push_back(gids_[t]);
    }
  }
  items_.reserve(vertical_.size());
  for (const auto& [item, list] : vertical_) items_.push_back(item);
  std::sort(items_.begin(), items_.end());
  // Gid lists are built in transaction order; gids_ ascend by construction
  // in FromPairs/FromTransactions, so each list is already sorted.
}

const GidList& TransactionDb::gid_list(ItemId item) const {
  static const GidList kEmpty;
  auto it = vertical_.find(item);
  return it == vertical_.end() ? kEmpty : it->second;
}

TransactionDb TransactionDb::Slice(size_t begin, size_t end) const {
  TransactionDb db;
  db.total_groups_ = static_cast<int64_t>(end - begin);
  db.gids_.assign(gids_.begin() + begin, gids_.begin() + end);
  db.transactions_.assign(transactions_.begin() + begin,
                          transactions_.begin() + end);
  db.BuildIndexes();
  return db;
}

}  // namespace minerule::mining
