#include "mining/gid_list.h"

namespace minerule::mining {

GidList IntersectGidLists(const GidList& a, const GidList& b) {
  GidList out;
  out.reserve(std::min(a.size(), b.size()));
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      out.push_back(a[i]);
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

size_t IntersectionSize(const GidList& a, const GidList& b) {
  size_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

}  // namespace minerule::mining
