// An interactive shell over the tightly-coupled system: type SQL or
// MINE RULE statements (terminated by ';') against one in-memory database.
// Dot-commands load demo datasets and inspect the catalog.
//
//   $ ./minerule_shell
//   minerule> .figure1
//   minerule> MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..1 item
//             AS HEAD, SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer
//             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5;
//   minerule> SELECT * FROM R;

#include <iostream>
#include <sstream>
#include <string>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "datagen/paper_example.h"
#include "datagen/quest_gen.h"
#include "datagen/retail_gen.h"
#include "relational/catalog_io.h"
#include "support/rule_browser.h"
#include "engine/data_mining_system.h"

namespace {

using namespace minerule;

void PrintHelp() {
  std::cout <<
      "Statements (terminate with ';'):\n"
      "  SELECT / INSERT / CREATE / DROP / DELETE   plain SQL\n"
      "  EXPLAIN [ANALYZE] SELECT ...               show (and time) the plan\n"
      "  MINE RULE ...                              the mining operator\n"
      "Dot commands:\n"
      "  .help              this text\n"
      "  \\trace             toggle the JSON run trace after MINE RULE\n"
      "  \\trace FILE        record spans; write Chrome trace JSON on exit\n"
      "  \\metrics           print the process-wide metrics registry\n"
      "  \\metrics prom      the same registry in Prometheus text format\n"
      "  .tables            list tables, views and sequences\n"
      "  .figure1           load the paper's Purchase table (Figure 1)\n"
      "  .quest N           load a Quest basket table 'Baskets' with N baskets\n"
      "  .retail N          load a retail 'Purchase' table with N customers\n"
      "  .algorithm NAME    simple-core algorithm: gidlist apriori\n"
      "                     apriori_tid dhp partition sampling\n"
      "  .top TABLE [K]     browse a rule table: top-K by confidence\n"
      "  .item TABLE ITEM   rules mentioning ITEM in body or head\n"
      "  .save FILE         dump the whole database to a file\n"
      "  .open FILE         load a database dump\n"
      "  .quit              exit\n";
}

void HandleDotCommand(const std::string& line, Catalog* catalog,
                      mr::DataMiningSystem* system,
                      mr::MiningOptions* options, bool* trace,
                      std::string* trace_out, bool* done) {
  std::istringstream in(line);
  std::string command;
  in >> command;
  if (command == ".quit" || command == ".exit") {
    *done = true;
    return;
  }
  if (command == "\\trace" || command == ".trace") {
    std::string path;
    in >> path;
    if (!path.empty()) {
      // With an argument, turn on span recording and remember where to
      // write the Chrome trace when the shell exits.
      *trace_out = path;
      GlobalTracer().Enable(true);
      std::cout << "span recording on; will write " << path << " on exit\n";
      return;
    }
    *trace = !*trace;
    std::cout << "trace " << (*trace ? "on" : "off") << "\n";
    return;
  }
  if (command == "\\metrics" || command == ".metrics") {
    std::string format;
    in >> format;
    if (format == "prom") {
      std::cout << GlobalMetrics().FormatPrometheus();
    } else {
      std::cout << MetricsRegistry::Format(GlobalMetrics().Snapshot());
    }
    return;
  }
  if (command == ".help") {
    PrintHelp();
    return;
  }
  if (command == ".tables") {
    std::cout << "tables:   " << Join(catalog->TableNames(), ", ") << "\n";
    std::cout << "views:    " << Join(catalog->ViewNames(), ", ") << "\n";
    std::cout << "sequences: " << Join(catalog->SequenceNames(), ", ")
              << "\n";
    return;
  }
  if (command == ".figure1") {
    catalog->DropTableIfExists("Purchase");
    auto table = datagen::MakePaperPurchaseTable(catalog);
    if (!table.ok()) {
      std::cout << table.status() << "\n";
      return;
    }
    std::cout << table.value()->ToDisplayString();
    std::cout << "Try:\n" << datagen::PaperExampleStatement() << ";\n";
    return;
  }
  if (command == ".quest") {
    int64_t n = 1000;
    in >> n;
    catalog->DropTableIfExists("Baskets");
    datagen::QuestParams params;
    params.num_transactions = n;
    auto table = datagen::MaterializeQuestTable(catalog, "Baskets", params);
    if (!table.ok()) {
      std::cout << table.status() << "\n";
      return;
    }
    std::cout << "Baskets(tid, item): " << table.value()->num_rows()
              << " rows over " << n << " baskets\n";
    return;
  }
  if (command == ".retail") {
    int64_t n = 200;
    in >> n;
    catalog->DropTableIfExists("Purchase");
    datagen::RetailParams params;
    params.num_customers = n;
    auto table = datagen::GenerateRetailTable(catalog, "Purchase", params);
    if (!table.ok()) {
      std::cout << table.status() << "\n";
      return;
    }
    std::cout << "Purchase: " << table.value()->num_rows() << " rows over "
              << n << " customers\n";
    return;
  }
  if (command == ".algorithm") {
    std::string name;
    in >> name;
    auto algorithm = mining::SimpleAlgorithmFromName(name);
    if (!algorithm.ok()) {
      std::cout << algorithm.status() << "\n";
      return;
    }
    options->algorithm = algorithm.value();
    std::cout << "simple-core algorithm: "
              << mining::SimpleAlgorithmName(options->algorithm) << "\n";
    return;
  }
  if (command == ".top" || command == ".item") {
    std::string table;
    in >> table;
    if (table.empty()) {
      std::cout << "usage: " << command << " TABLE ...\n";
      return;
    }
    auto browser = support::RuleBrowser::Load(system->sql_engine(), table);
    if (!browser.ok()) {
      std::cout << browser.status() << "\n";
      return;
    }
    if (command == ".top") {
      size_t k = 10;
      in >> k;
      std::cout << support::RuleBrowser::Render(
          browser.value().TopByConfidence(k));
    } else {
      std::string item;
      in >> item;
      std::cout << support::RuleBrowser::Render(
          browser.value().ContainingItem(item));
    }
    return;
  }
  if (command == ".save") {
    std::string path;
    in >> path;
    if (path.empty()) {
      std::cout << "usage: .save FILE\n";
      return;
    }
    Status status = SaveCatalogToFile(*catalog, path);
    std::cout << (status.ok() ? "saved " + path : status.ToString()) << "\n";
    return;
  }
  if (command == ".open") {
    std::string path;
    in >> path;
    if (path.empty()) {
      std::cout << "usage: .open FILE\n";
      return;
    }
    Status status = LoadCatalogFromFile(path, catalog);
    std::cout << (status.ok() ? "loaded " + path : status.ToString()) << "\n";
    return;
  }
  (void)system;
  std::cout << "unknown command " << command << " (try .help)\n";
}

void ExecuteStatement(const std::string& text, mr::DataMiningSystem* system,
                      const mr::MiningOptions& options, bool trace) {
  if (mr::IsMineRuleStatement(text)) {
    auto stats = system->ExecuteMineRule(text, options);
    if (!stats.ok()) {
      std::cout << stats.status() << "\n";
      return;
    }
    std::printf(
        "directives %s | %lld groups | %lld rules | total %.2f ms "
        "(pre %.2f, core %.2f, post %.2f)\n",
        stats.value().directives.ToString().c_str(),
        static_cast<long long>(stats.value().total_groups),
        static_cast<long long>(stats.value().output.num_rules),
        stats.value().TotalSeconds() * 1e3,
        stats.value().preprocess_seconds * 1e3,
        stats.value().core_seconds * 1e3,
        stats.value().postprocess_seconds * 1e3);
    auto rendered = system->RenderRules(stats.value().output.rules_table);
    if (rendered.ok()) std::cout << rendered.value();
    if (trace) std::cout << stats.value().ToJson() << "\n";
    return;
  }
  auto result = system->ExecuteSql(text);
  if (!result.ok()) {
    std::cout << result.status() << "\n";
    return;
  }
  if (result.value().schema.num_columns() > 0) {
    std::cout << result.value().ToDisplayString(50);
    std::cout << "(" << result.value().rows.size() << " rows)\n";
  } else {
    std::cout << "ok";
    if (result.value().affected_rows > 0) {
      std::cout << " (" << result.value().affected_rows << " rows)";
    }
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  Catalog catalog;
  mr::DataMiningSystem system(&catalog);
  mr::MiningOptions options;

  std::cout << "MineRule shell — a tightly-coupled data mining system\n"
               "(Meo, Psaila & Ceri, ICDE 1998). Type .help for help.\n";

  std::string buffer;
  bool trace = false;
  std::string trace_out;
  bool done = false;
  while (!done) {
    std::cout << (buffer.empty() ? "minerule> " : "     ...> ") << std::flush;
    std::string line;
    if (!std::getline(std::cin, line)) break;
    const std::string trimmed{StripWhitespace(line)};
    if (buffer.empty() && trimmed.empty()) continue;
    if (buffer.empty() && (trimmed[0] == '.' || trimmed[0] == '\\')) {
      HandleDotCommand(trimmed, &catalog, &system, &options, &trace,
                       &trace_out, &done);
      continue;
    }
    buffer += line;
    buffer += '\n';
    const size_t semi = buffer.rfind(';');
    if (semi == std::string::npos) continue;
    std::string statement{StripWhitespace(buffer.substr(0, semi))};
    buffer.clear();
    if (!statement.empty()) {
      ExecuteStatement(statement, &system, options, trace);
    }
  }
  if (!trace_out.empty()) {
    Status status = GlobalTracer().WriteChromeTraceFile(trace_out);
    std::cout << (status.ok() ? "wrote " + trace_out : status.ToString())
              << "\n";
  }
  return 0;
}
