// The scenario that motivates the paper's general rules: "which expensive
// purchases are followed, on a later day, by cheap accessory purchases by
// the same customer?" — CLUSTER BY date with an ordering condition plus a
// mining condition on price, exactly the §2 statement shape, on a synthetic
// retail workload with planted follow-up patterns.
//
// Also demonstrates preprocessing reuse (§3): the confidence threshold is
// swept without re-running the encoding queries.

#include <cstdio>
#include <iostream>

#include "datagen/retail_gen.h"
#include "engine/data_mining_system.h"

namespace {

int Fail(const minerule::Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

std::string StatementWithConfidence(double confidence) {
  char text[640];
  std::snprintf(
      text, sizeof(text),
      "MINE RULE FollowUps AS "
      "SELECT DISTINCT 1..2 item AS BODY, 1..1 item AS HEAD, SUPPORT, "
      "CONFIDENCE "
      "WHERE BODY.price >= 100 AND HEAD.price < 100 "
      "FROM Purchase "
      "GROUP BY customer "
      "CLUSTER BY date HAVING BODY.date < HEAD.date "
      "EXTRACTING RULES WITH SUPPORT: 0.03, CONFIDENCE: %g",
      confidence);
  return text;
}

}  // namespace

int main() {
  using namespace minerule;

  Catalog catalog;
  mr::DataMiningSystem system(&catalog);

  datagen::RetailParams params;
  params.num_customers = 400;
  params.num_items = 60;
  params.visits_per_customer = 5;
  params.follow_up_probability = 0.6;
  auto table = datagen::GenerateRetailTable(&catalog, "Purchase", params);
  if (!table.ok()) return Fail(table.status());
  std::cout << "Synthetic store: " << table.value()->num_rows()
            << " purchase rows, " << params.num_customers << " customers\n\n";

  mr::MiningOptions options;
  options.reuse_preprocessing = true;

  std::cout << "Confidence sweep with preprocessing reuse:\n";
  for (double confidence : {0.2, 0.4, 0.6, 0.8}) {
    auto stats =
        system.ExecuteMineRule(StatementWithConfidence(confidence), options);
    if (!stats.ok()) return Fail(stats.status());
    std::printf(
        "  minconf %.1f: %4lld rules | preprocess %7.2f ms%s | core %7.2f "
        "ms\n",
        confidence, static_cast<long long>(stats.value().output.num_rules),
        stats.value().preprocess_seconds * 1e3,
        stats.value().preprocessing_reused ? " (reused)" : "        ",
        stats.value().core_seconds * 1e3);
  }

  // Show a few decoded temporal rules.
  auto rules = system.ExecuteSql(
      "SELECT B.item AS bought_first, H.item AS bought_later, R.SUPPORT, "
      "R.CONFIDENCE FROM FollowUps R, FollowUps_Bodies B, FollowUps_Heads H "
      "WHERE R.BodyId = B.BodyId AND R.HeadId = H.HeadId "
      "ORDER BY R.CONFIDENCE DESC LIMIT 12");
  if (!rules.ok()) return Fail(rules.status());
  std::cout << "\n\"Bought X, later bought Y\" rules (body price >= 100, "
               "head price < 100, head date after body date):\n"
            << rules.value().ToDisplayString() << "\n";

  // Sanity: the planted pattern pairs gear_k with a fixed accessory; the
  // top rules should be gear -> accessory.
  std::cout << "Every rule's body is expensive gear and head a cheap "
               "accessory by construction of the mining condition.\n";
  return 0;
}
