// General rules with different body and head schemas (the H directive):
// "customers who buy item X tend to shop on date Y" — body over items,
// head over dates. Also shows multi-attribute schemas and cardinality
// specs, the features that make MINE RULE more general than plain
// market-basket mining (§2 of the paper).

#include <cstdio>
#include <iostream>

#include "datagen/paper_example.h"
#include "datagen/retail_gen.h"
#include "engine/data_mining_system.h"

namespace {

int Fail(const minerule::Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

}  // namespace

int main() {
  using namespace minerule;

  Catalog catalog;
  mr::DataMiningSystem system(&catalog);

  datagen::RetailParams params;
  params.num_customers = 200;
  params.num_items = 30;
  params.date_span_days = 14;
  auto table = datagen::GenerateRetailTable(&catalog, "Purchase", params);
  if (!table.ok()) return Fail(table.status());

  // --- body: items; head: dates (H = true) --------------------------------
  auto when = system.ExecuteMineRule(
      "MINE RULE ShoppingDays AS "
      "SELECT DISTINCT 1..1 item AS BODY, 1..2 date AS HEAD, SUPPORT, "
      "CONFIDENCE FROM Purchase GROUP BY customer "
      "EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.3");
  if (!when.ok()) return Fail(when.status());
  std::cout << "Directives: " << when.value().directives.ToString()
            << " (H set: body and head use different attributes)\n";
  std::printf("item => shopping-date rules: %lld\n\n",
              static_cast<long long>(when.value().output.num_rules));

  auto sample = system.ExecuteSql(
      "SELECT B.item, H.date, R.SUPPORT, R.CONFIDENCE FROM ShoppingDays R, "
      "ShoppingDays_Bodies B, ShoppingDays_Heads H WHERE R.BodyId = "
      "B.BodyId AND R.HeadId = H.HeadId ORDER BY R.SUPPORT DESC LIMIT 8");
  if (!sample.ok()) return Fail(sample.status());
  std::cout << sample.value().ToDisplayString() << "\n";

  // --- multi-attribute body schema ----------------------------------------
  // Rules over (item, qty) pairs: "buying 2 of X implies buying Y".
  auto multi = system.ExecuteMineRule(
      "MINE RULE QtyRules AS "
      "SELECT DISTINCT 1..1 item, qty AS BODY, 1..1 item AS HEAD, SUPPORT, "
      "CONFIDENCE FROM Purchase GROUP BY customer "
      "EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.5");
  if (!multi.ok()) return Fail(multi.status());
  std::cout << "Multi-attribute body (item, qty): "
            << multi.value().output.num_rules << " rules\n";
  auto multi_rows = system.ExecuteSql(
      "SELECT B.item AS body_item, B.qty AS body_qty, H.item AS head_item "
      "FROM QtyRules R, QtyRules_Bodies B, QtyRules_Heads H WHERE R.BodyId "
      "= B.BodyId AND R.HeadId = H.HeadId LIMIT 8");
  if (!multi_rows.ok()) return Fail(multi_rows.status());
  std::cout << multi_rows.value().ToDisplayString() << "\n";

  // --- cardinality control -------------------------------------------------
  // Exactly two-item bodies: the 2..2 spec prunes the lattice at m = 2.
  auto pairs = system.ExecuteMineRule(
      "MINE RULE PairRules AS "
      "SELECT DISTINCT 2..2 item AS BODY, 1..1 item AS HEAD, SUPPORT, "
      "CONFIDENCE FROM Purchase GROUP BY customer "
      "EXTRACTING RULES WITH SUPPORT: 0.08, CONFIDENCE: 0.5");
  if (!pairs.ok()) return Fail(pairs.status());
  std::printf("Exact-pair bodies (2..2): %lld rules\n",
              static_cast<long long>(pairs.value().output.num_rules));

  // Verify via SQL that every body really has two items.
  auto check = system.ExecuteSql(
      "SELECT BodyId, COUNT(*) AS n FROM PairRules_Bodies GROUP BY BodyId "
      "HAVING COUNT(*) <> 2");
  if (!check.ok()) return Fail(check.status());
  std::cout << (check.value().rows.empty()
                    ? "SQL check passed: every body has exactly 2 items\n"
                    : "UNEXPECTED: non-pair body found!\n");
  return 0;
}
