// Quickstart: the paper's running example, end to end.
//
// Loads the Figure 1 `Purchase` table, executes the §2 MINE RULE statement
// through the tightly-coupled kernel, and prints the Figure 2.b rule table
// along with the per-phase breakdown of Figure 3.

#include <cstdio>
#include <iostream>

#include "datagen/paper_example.h"
#include "engine/data_mining_system.h"

namespace {

int Fail(const minerule::Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

}  // namespace

int main() {
  using namespace minerule;

  Catalog catalog;
  mr::DataMiningSystem system(&catalog);

  // 1. Load the source data (Figure 1).
  auto purchase = datagen::MakePaperPurchaseTable(&catalog);
  if (!purchase.ok()) return Fail(purchase.status());
  std::cout << "The Purchase table (paper Figure 1):\n"
            << purchase.value()->ToDisplayString() << "\n";

  // 2. The MINE RULE statement of Section 2.
  const std::string statement = datagen::PaperExampleStatement();
  std::cout << "Statement:\n" << statement << "\n\n";

  // 3. Execute it.
  auto stats = system.ExecuteMineRule(statement);
  if (!stats.ok()) return Fail(stats.status());

  std::cout << "Directive classification (H W M G C K F R): "
            << stats.value().directives.ToString() << "\n";
  std::cout << "Statement class: "
            << (stats.value().directives.IsSimpleClass() ? "simple"
                                                         : "general")
            << " association rules\n";
  std::cout << "Groups: " << stats.value().total_groups
            << ", min group count: " << stats.value().min_group_count
            << "\n\n";

  // 4. The mined rules, decoded (Figure 2.b).
  auto rendered = system.RenderRules("FilteredOrderedSets");
  if (!rendered.ok()) return Fail(rendered.status());
  std::cout << "FilteredOrderedSets (paper Figure 2.b):\n"
            << rendered.value() << "\n";

  // 5. Tight coupling: the output is a plain table, so SQL can join it
  //    right back against the source data.
  auto joined = system.ExecuteSql(
      "SELECT DISTINCT P.customer, B.item FROM FilteredOrderedSets_Bodies "
      "B, Purchase P WHERE B.item = P.item ORDER BY 1, 2");
  if (!joined.ok()) return Fail(joined.status());
  std::cout << "Customers who bought a rule-body item (plain SQL over the "
               "rule tables):\n"
            << joined.value().ToDisplayString() << "\n";

  // 6. Phase timings (the Figure 3 process flow).
  std::printf(
      "Phases: translate %.3f ms | preprocess %.3f ms | core %.3f ms | "
      "postprocess %.3f ms\n",
      stats.value().translate_seconds * 1e3,
      stats.value().preprocess_seconds * 1e3,
      stats.value().core_seconds * 1e3,
      stats.value().postprocess_seconds * 1e3);
  std::cout << "\nGenerated preprocessing queries:\n";
  for (const mr::QueryStat& q : stats.value().preprocess_queries) {
    if (q.id == "DDL") continue;
    std::printf("  %-4s %6lld rows  %s\n", q.id.c_str(),
                static_cast<long long>(q.rows), q.sql.c_str());
  }
  return 0;
}
