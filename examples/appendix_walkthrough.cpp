// A step-by-step walkthrough of the preprocessing programs (the paper's
// Figure 4 and Appendix A) on the Figure 1 data: prints every generated
// query together with the encoded table it produces, for both statement
// classes. This is the "how does the borderline actually work" demo.

#include <iostream>

#include "datagen/paper_example.h"
#include "minerule/parser.h"
#include "preprocess/preprocessor.h"
#include "sql/engine.h"

namespace {

using namespace minerule;

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

/// The table a query writes into, parsed out of its INSERT/CREATE text.
std::string TargetTable(const std::string& sql) {
  for (const char* prefix : {"INSERT INTO ", "CREATE VIEW ", "CREATE TABLE "}) {
    if (sql.rfind(prefix, 0) == 0) {
      const size_t start = std::string(prefix).size();
      const size_t end = sql.find_first_of(" (", start);
      return sql.substr(start, end - start);
    }
  }
  return "";
}

int Walkthrough(const std::string& title, const std::string& statement) {
  Catalog catalog;
  sql::SqlEngine engine(&catalog);
  auto purchase = datagen::MakePaperPurchaseTable(&catalog);
  if (!purchase.ok()) return Fail(purchase.status());

  std::cout << "\n================================================\n"
            << title << "\n"
            << "================================================\n"
            << statement << "\n";

  auto stmt = mr::ParseMineRule(statement);
  if (!stmt.ok()) return Fail(stmt.status());
  mr::Translator translator(&catalog);
  auto translation = translator.Translate(stmt.value());
  if (!translation.ok()) return Fail(translation.status());
  std::cout << "\ndirectives: " << translation.value().directives.ToString()
            << " -> "
            << (translation.value().directives.IsSimpleClass() ? "simple"
                                                               : "general")
            << " class\n";

  mr::Preprocessor preprocessor(&engine);
  auto result = preprocessor.Run(stmt.value(), translation.value());
  if (!result.ok()) return Fail(result.status());

  for (const mr::QueryStat& stat : result.value().stats) {
    if (stat.id == "DDL") continue;
    std::cout << "\n--- " << stat.id << " ---\n" << stat.sql << "\n";
    const std::string target = TargetTable(stat.sql);
    if (!target.empty() && catalog.HasTable(target)) {
      auto table = catalog.GetTable(target);
      if (table.ok()) {
        std::cout << table.value()->ToDisplayString(20);
      }
    } else if (stat.sql.find("INTO :totg") != std::string::npos) {
      auto totg = engine.GetHostVariable("totg");
      if (totg.ok()) {
        std::cout << ":totg = " << totg.value().ToString()
                  << " (and :mingroups = "
                  << engine.GetHostVariable("mingroups")
                         .value_or(Value::Null())
                         .ToString()
                  << ")\n";
      }
    }
  }
  std::cout << "\nCore-operator inputs: ";
  const mr::PreprocessProgram& program = result.value().program;
  if (!program.coded_source.empty()) std::cout << program.coded_source << " ";
  if (!program.coded_source_b.empty()) {
    std::cout << program.coded_source_b << " ";
  }
  if (!program.coded_source_h.empty()) {
    std::cout << program.coded_source_h << " ";
  }
  if (!program.cluster_couples.empty()) {
    std::cout << program.cluster_couples << " ";
  }
  if (!program.input_rules.empty()) std::cout << program.input_rules;
  std::cout << "\n";
  return 0;
}

}  // namespace

int main() {
  const std::string simple_statement =
      "MINE RULE SimpleAR AS SELECT DISTINCT 1..n item AS BODY, 1..1 item "
      "AS HEAD, SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer "
      "EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.3";
  int rc = Walkthrough(
      "Appendix A: preprocessing for SIMPLE association rules", simple_statement);
  if (rc != 0) return rc;
  return Walkthrough(
      "Section 4.2.2: preprocessing for GENERAL association rules "
      "(the paper's running example)",
      minerule::datagen::PaperExampleStatement());
}
