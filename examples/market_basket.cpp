// Market-basket analysis on a Quest-style synthetic workload: the classic
// simple-association-rule scenario the paper's §2 generalizes. Demonstrates
// the algorithm pool (§3 "algorithm interoperability") and a support sweep.

#include <cstdio>
#include <iostream>

#include "common/stopwatch.h"
#include "datagen/quest_gen.h"
#include "engine/data_mining_system.h"

namespace {

int Fail(const minerule::Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

}  // namespace

int main() {
  using namespace minerule;

  Catalog catalog;
  mr::DataMiningSystem system(&catalog);

  // T8.I4.D5k over 500 items — a small instance of the canonical datasets.
  datagen::QuestParams params;
  params.num_transactions = 5000;
  params.avg_transaction_size = 8;
  params.avg_pattern_size = 4;
  params.num_items = 500;
  params.num_patterns = 80;
  auto table = datagen::MaterializeQuestTable(&catalog, "Baskets", params);
  if (!table.ok()) return Fail(table.status());
  std::cout << "Generated " << table.value()->num_rows()
            << " (tid, item) rows over " << params.num_transactions
            << " baskets\n\n";

  const char* statement =
      "MINE RULE BasketRules AS "
      "SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, "
      "CONFIDENCE FROM Baskets GROUP BY tid "
      "EXTRACTING RULES WITH SUPPORT: 0.01, CONFIDENCE: 0.5";

  // --- the algorithm pool on the same statement --------------------------
  std::cout << "Algorithm pool (same statement, identical rule sets):\n";
  for (mining::SimpleAlgorithm algorithm :
       {mining::SimpleAlgorithm::kGidList, mining::SimpleAlgorithm::kApriori,
        mining::SimpleAlgorithm::kDhp, mining::SimpleAlgorithm::kPartition,
        mining::SimpleAlgorithm::kSampling}) {
    mr::MiningOptions options;
    options.algorithm = algorithm;
    auto stats = system.ExecuteMineRule(statement, options);
    if (!stats.ok()) return Fail(stats.status());
    std::printf(
        "  %-9s  %4lld rules  core %7.2f ms  passes %d%s\n",
        mining::SimpleAlgorithmName(algorithm),
        static_cast<long long>(stats.value().output.num_rules),
        stats.value().core_seconds * 1e3, stats.value().core.simple.passes,
        stats.value().core.simple.sampling_needed_full_pass
            ? "  (sampling miss: extra pass)"
            : "");
  }

  // --- support sweep ------------------------------------------------------
  std::cout << "\nSupport sweep (gidlist core):\n";
  for (double support : {0.05, 0.02, 0.01, 0.005}) {
    char text[512];
    std::snprintf(text, sizeof(text),
                  "MINE RULE Sweep AS SELECT DISTINCT 1..n item AS BODY, "
                  "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Baskets "
                  "GROUP BY tid EXTRACTING RULES WITH SUPPORT: %g, "
                  "CONFIDENCE: 0.5",
                  support);
    auto stats = system.ExecuteMineRule(text);
    if (!stats.ok()) return Fail(stats.status());
    std::printf("  minsup %.3f: %5lld rules, total %7.2f ms\n", support,
                static_cast<long long>(stats.value().output.num_rules),
                stats.value().TotalSeconds() * 1e3);
  }

  // --- top rules by confidence, straight from SQL -------------------------
  auto top = system.ExecuteSql(
      "SELECT B.item AS body_item, H.item AS head_item, R.SUPPORT, "
      "R.CONFIDENCE FROM BasketRules R, BasketRules_Bodies B, "
      "BasketRules_Heads H WHERE R.BodyId = B.BodyId AND R.HeadId = "
      "H.HeadId ORDER BY R.CONFIDENCE DESC, R.SUPPORT DESC LIMIT 10");
  if (!top.ok()) return Fail(top.status());
  std::cout << "\nTop rule components by confidence (SQL over the output "
               "tables):\n"
            << top.value().ToDisplayString() << "\n";
  return 0;
}
