// Concurrent clients: the multi-session front end (DESIGN.md §15).
//
// Four client threads share one catalog through server::Server — each
// creates a private table, reads the paper's Purchase table under an
// epoch snapshot, and mines its own rule set. Afterwards one more
// session queries mr_runs to show the per-session attribution every
// statement left behind.

#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "datagen/paper_example.h"
#include "server/server.h"
#include "server/session.h"

namespace {

int Fail(const minerule::Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

void RunClient(minerule::server::Server* server, int k) {
  using minerule::server::SessionResult;
  auto session = server->Connect("client-" + std::to_string(k));
  const std::string t = "sales_" + std::to_string(k);

  std::vector<std::string> script = {
      "CREATE TABLE " + t + " (customer VARCHAR, item VARCHAR)",
      "INSERT INTO " + t + " SELECT customer, item FROM Purchase",
      "SELECT COUNT(*) FROM " + t,
      "MINE RULE rules_" + std::to_string(k) +
          " AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, "
          "SUPPORT, CONFIDENCE FROM " + t +
          " GROUP BY customer EXTRACTING RULES WITH SUPPORT: 0.2, "
          "CONFIDENCE: 0.3",
  };
  for (const std::string& statement : script) {
    auto result = session->Execute(statement);
    if (!result.ok()) {
      std::cerr << "client " << k << ": " << result.status() << "\n";
      return;
    }
    const SessionResult& r = result.value();
    // Snapshot promise: a read's observed epoch never moves mid-statement.
    if (r.statement_class == minerule::server::StatementClass::kRead &&
        r.epoch_start != r.epoch_end) {
      std::cerr << "client " << k << ": snapshot violated!\n";
      return;
    }
  }
}

}  // namespace

int main() {
  using namespace minerule;

  Catalog catalog;
  server::Server server(&catalog);

  // Shared source table every client reads.
  auto purchase = datagen::MakePaperPurchaseTable(&catalog);
  if (!purchase.ok()) return Fail(purchase.status());

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  for (int k = 0; k < kClients; ++k) {
    clients.emplace_back(RunClient, &server, k);
  }
  for (std::thread& thread : clients) thread.join();

  // Attribution: one mr_runs row per statement, tagged with the session
  // that ran it and what admission control did to it — plain SQL away.
  auto reporter = server.Connect("reporter");
  auto report = reporter->Execute(
      "SELECT session_id, COUNT(*), SUM(queue_wait_micros) FROM mr_runs "
      "WHERE session_id > 0 GROUP BY session_id ORDER BY session_id");
  if (!report.ok()) return Fail(report.status());

  std::cout << "sessions opened: " << server.sessions_opened() << "\n"
            << "per-session statement counts and queue waits:\n"
            << report.value().query.ToDisplayString() << "\n";
  std::cout << "CONCURRENT CLIENTS OK\n";
  return 0;
}
