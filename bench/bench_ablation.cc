// Ablation studies for the design choices DESIGN.md §5 calls out:
//
//   A. Partition count — more slices mean cheaper local mining but more
//      candidates to verify globally (the [13] trade-off).
//   B. Sampling rate — smaller samples are cheaper to mine but raise the
//      probability of a Toivonen miss (the extra full pass).
//   C. DHP bucket count — fewer buckets mean more hash collisions and
//      weaker pass-2 pruning (the [12] trade-off).
//   D. Preprocessor item pruning (Q3's HAVING) — disabling the SQL-side
//      prune (threshold 1) pushes all pruning into the core operator; the
//      borderline placement exists because the SQL prune shrinks
//      CodedSource and the core's level-1 work.

#include <benchmark/benchmark.h>

#include "datagen/quest_gen.h"
#include "engine/data_mining_system.h"
#include "mining/simple_miner.h"

namespace {

using namespace minerule;

mining::TransactionDb& SharedDb() {
  static mining::TransactionDb* db = [] {
    datagen::QuestParams params;
    params.num_transactions = 4000;
    params.avg_transaction_size = 10;
    params.num_items = 1000;
    params.num_patterns = 100;
    return new mining::TransactionDb(datagen::GenerateQuestDb(params));
  }();
  return *db;
}

// --- A: partition count ----------------------------------------------------
void BM_PartitionCount(benchmark::State& state) {
  mining::SimpleMinerOptions options;
  options.partition_count = static_cast<int>(state.range(0));
  auto miner = mining::CreateMiner(mining::SimpleAlgorithm::kPartition,
                                   options);
  const mining::TransactionDb& db = SharedDb();
  const int64_t min_count = mining::MinGroupCount(0.01, db.total_groups());
  mining::SimpleMinerStats stats;
  for (auto _ : state) {
    stats = {};
    auto result = miner->Mine(db, min_count, -1, &stats);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result.value().size());
  }
  state.counters["global_candidates"] =
      static_cast<double>(stats.candidates_per_level.empty()
                              ? 0
                              : stats.candidates_per_level[0]);
}
BENCHMARK(BM_PartitionCount)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

// --- B: sampling rate --------------------------------------------------------
void BM_SamplingRate(benchmark::State& state) {
  mining::SimpleMinerOptions options;
  options.sample_rate = static_cast<double>(state.range(0)) / 100.0;
  options.sample_lowering = 0.5;  // aggressive lowering to dodge misses
  const mining::TransactionDb& db = SharedDb();
  // A higher threshold keeps the borderline population small enough that
  // the miss rate actually varies with the sample size.
  const int64_t min_count = mining::MinGroupCount(0.04, db.total_groups());
  int misses = 0;
  int runs = 0;
  for (auto _ : state) {
    // Vary the seed per iteration so the miss *rate* is observable.
    options.seed = 1000 + static_cast<uint64_t>(runs);
    auto miner =
        mining::CreateMiner(mining::SimpleAlgorithm::kSampling, options);
    mining::SimpleMinerStats stats;
    auto result = miner->Mine(db, min_count, -1, &stats);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    misses += stats.sampling_needed_full_pass ? 1 : 0;
    ++runs;
  }
  state.counters["miss_rate"] =
      runs == 0 ? 0.0 : static_cast<double>(misses) / runs;
  state.counters["sample_pct"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SamplingRate)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);

// --- C: DHP bucket count -----------------------------------------------------
void BM_DhpBuckets(benchmark::State& state) {
  mining::SimpleMinerOptions options;
  options.dhp_buckets = static_cast<int>(state.range(0));
  auto miner = mining::CreateMiner(mining::SimpleAlgorithm::kDhp, options);
  const mining::TransactionDb& db = SharedDb();
  const int64_t min_count = mining::MinGroupCount(0.01, db.total_groups());
  mining::SimpleMinerStats stats;
  for (auto _ : state) {
    stats = {};
    auto result = miner->Mine(db, min_count, -1, &stats);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result.value().size());
  }
  state.counters["pair_candidates"] = static_cast<double>(
      stats.candidates_per_level.size() > 1 ? stats.candidates_per_level[1]
                                            : 0);
}
BENCHMARK(BM_DhpBuckets)
    ->Arg(1 << 8)
    ->Arg(1 << 12)
    ->Arg(1 << 16)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

// --- D: the Q3 borderline prune ---------------------------------------------
// Compare the full pipeline when the SQL-side item prune is effective
// (normal support) vs when every item sails through to the core
// (support so low that :mingroups becomes 1). The row counts show why the
// paper places item pruning on the SQL side of the border.
void BM_BorderlineItemPrune(benchmark::State& state) {
  Catalog catalog;
  mr::DataMiningSystem system(&catalog);
  datagen::QuestParams params;
  params.num_transactions = 2000;
  params.num_items = 1000;
  if (!datagen::MaterializeQuestTable(&catalog, "Baskets", params).ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  const bool pruned = state.range(0) == 1;
  // 2% support prunes hard; 0.05% (1 group) disables the prune.
  const char* statement =
      pruned ? "MINE RULE R AS SELECT DISTINCT 1..2 item AS BODY, 1..1 item "
               "AS HEAD FROM Baskets GROUP BY tid EXTRACTING RULES WITH "
               "SUPPORT: 0.02, CONFIDENCE: 0.6"
             : "MINE RULE R AS SELECT DISTINCT 1..2 item AS BODY, 1..1 item "
               "AS HEAD FROM Baskets GROUP BY tid EXTRACTING RULES WITH "
               "SUPPORT: 0.0001, CONFIDENCE: 0.6";
  int64_t coded_rows = 0;
  for (auto _ : state) {
    auto stats = system.ExecuteMineRule(statement);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    for (const mr::QueryStat& q : stats.value().preprocess_queries) {
      if (q.id == "Q4") coded_rows = q.rows;
    }
  }
  state.counters["coded_source_rows"] = static_cast<double>(coded_rows);
  state.SetLabel(pruned ? "sql_prune_on" : "sql_prune_off");
}
BENCHMARK(BM_BorderlineItemPrune)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
