// Experiment Fig.3: the kernel process flow — translator, preprocessor,
// core operator, postprocessor — measured per phase across data scales.
//
// The architectural claim: the relational server carries the data-heavy
// encoding (preprocessing) while the core operator carries the
// combinatorial part, and both stay small relative to a decoupled round
// trip (see bench_coupling for that comparison).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/json.h"
#include "common/trace.h"
#include "datagen/retail_gen.h"
#include "engine/data_mining_system.h"

namespace {

using namespace minerule;

const char* kGeneralStatement =
    "MINE RULE FollowUps AS SELECT DISTINCT 1..2 item AS BODY, 1..1 item AS "
    "HEAD, SUPPORT, CONFIDENCE WHERE BODY.price >= 100 AND HEAD.price < 100 "
    "FROM Purchase GROUP BY customer CLUSTER BY date HAVING BODY.date < "
    "HEAD.date EXTRACTING RULES WITH SUPPORT: 0.03, CONFIDENCE: 0.2";

const char* kSimpleStatement =
    "MINE RULE Basket AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS "
    "HEAD, SUPPORT, CONFIDENCE FROM Purchase GROUP BY tr "
    "EXTRACTING RULES WITH SUPPORT: 0.01, CONFIDENCE: 0.4";

void RunPipeline(benchmark::State& state, const char* statement) {
  Catalog catalog;
  mr::DataMiningSystem system(&catalog);
  datagen::RetailParams params;
  params.num_customers = state.range(0);
  params.num_items = 50;
  if (!datagen::GenerateRetailTable(&catalog, "Purchase", params).ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  double translate = 0, preprocess = 0, core = 0, postprocess = 0;
  int64_t rules = 0;
  int iterations = 0;
  for (auto _ : state) {
    auto stats = system.ExecuteMineRule(statement);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    translate += stats.value().translate_seconds;
    preprocess += stats.value().preprocess_seconds;
    core += stats.value().core_seconds;
    postprocess += stats.value().postprocess_seconds;
    rules = stats.value().output.num_rules;
    ++iterations;
  }
  state.counters["translate_ms"] = 1e3 * translate / iterations;
  state.counters["preprocess_ms"] = 1e3 * preprocess / iterations;
  state.counters["core_ms"] = 1e3 * core / iterations;
  state.counters["postprocess_ms"] = 1e3 * postprocess / iterations;
  state.counters["rules"] = static_cast<double>(rules);
}

void BM_PipelineGeneral(benchmark::State& state) {
  RunPipeline(state, kGeneralStatement);
}
BENCHMARK(BM_PipelineGeneral)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineSimple(benchmark::State& state) {
  RunPipeline(state, kSimpleStatement);
}
BENCHMARK(BM_PipelineSimple)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);

// --smoke: one tiny run per statement class, print the full JSON trace and
// check that it parses. CI runs this to validate the observability layer
// end to end without benchmark noise.
int RunSmoke() {
  struct Case {
    const char* label;
    const char* statement;
  };
  const Case cases[] = {{"general", kGeneralStatement},
                        {"simple", kSimpleStatement}};
  for (const Case& c : cases) {
    Catalog catalog;
    mr::DataMiningSystem system(&catalog);
    datagen::RetailParams params;
    params.num_customers = 60;
    params.num_items = 30;
    auto gen = datagen::GenerateRetailTable(&catalog, "Purchase", params);
    if (!gen.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   gen.status().ToString().c_str());
      return 1;
    }
    auto stats = system.ExecuteMineRule(c.statement);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s: %s\n", c.label,
                   stats.status().ToString().c_str());
      return 1;
    }
    const std::string json = stats.value().ToJson();
    auto valid = ValidateJson(json);
    if (!valid.ok()) {
      std::fprintf(stderr, "%s: trace JSON invalid: %s\n", c.label,
                   valid.ToString().c_str());
      return 1;
    }
    std::printf("%s\n", json.c_str());
  }
  std::printf("SMOKE OK\n");
  return 0;
}

// Writes the span tracer's Chrome trace to `path` and self-checks it: the
// JSON must parse and every pipeline stage must have recorded at least one
// span. Prints "TRACE OK" on success (CI greps for it).
int WriteAndCheckTrace(const std::string& path) {
  Status written = GlobalTracer().WriteChromeTraceFile(path);
  if (!written.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  Status valid = ValidateJson(GlobalTracer().ChromeTraceJson());
  if (!valid.ok()) {
    std::fprintf(stderr, "chrome trace invalid: %s\n",
                 valid.ToString().c_str());
    return 1;
  }
  const char* stages[] = {"translate", "preprocess", "core", "postprocess"};
  const std::vector<SpanEvent> spans = GlobalTracer().Snapshot();
  for (const char* stage : stages) {
    bool found = false;
    for (const SpanEvent& span : spans) {
      if (span.name.rfind(stage, 0) == 0) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "no span for stage %s\n", stage);
      return 1;
    }
  }
  std::printf("TRACE OK %s (%zu spans)\n", path.c_str(), spans.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string trace_out;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (!trace_out.empty()) GlobalTracer().Enable(true);
  if (smoke) {
    int rc = RunSmoke();
    if (rc == 0 && !trace_out.empty()) rc = WriteAndCheckTrace(trace_out);
    return rc;
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!trace_out.empty()) return WriteAndCheckTrace(trace_out);
  return 0;
}
