// Experiment §1 (the architectural argument): tightly-coupled execution
// inside the server vs the decoupled tool workflow, on identical data and
// with the same core mining algorithm — so the measured difference is
// purely the architecture: export/parse/re-encode on the way out, and the
// rule-import step on the way back in.

#include <benchmark/benchmark.h>

#include "datagen/quest_gen.h"
#include "decoupled/decoupled_miner.h"
#include "engine/data_mining_system.h"

namespace {

using namespace minerule;

constexpr double kSupport = 0.01;
constexpr double kConfidence = 0.5;

void SetUpData(Catalog* catalog, int64_t transactions) {
  datagen::QuestParams params;
  params.num_transactions = transactions;
  params.avg_transaction_size = 8;
  params.num_items = 500;
  params.num_patterns = 60;
  (void)datagen::MaterializeQuestTable(catalog, "Baskets", params);
}

void BM_TightlyCoupled(benchmark::State& state) {
  Catalog catalog;
  mr::DataMiningSystem system(&catalog);
  SetUpData(&catalog, state.range(0));
  char statement[512];
  std::snprintf(statement, sizeof(statement),
                "MINE RULE Coupled AS SELECT DISTINCT 1..n item AS BODY, "
                "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Baskets GROUP "
                "BY tid EXTRACTING RULES WITH SUPPORT: %g, CONFIDENCE: %g",
                kSupport, kConfidence);
  int64_t rules = 0;
  for (auto _ : state) {
    auto stats = system.ExecuteMineRule(statement);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    rules = stats.value().output.num_rules;
  }
  // Rules are already in the database: no import step exists.
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_TightlyCoupled)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMillisecond);

void BM_Decoupled(benchmark::State& state) {
  Catalog catalog;
  sql::SqlEngine engine(&catalog);
  SetUpData(&catalog, state.range(0));
  decoupled::DecoupledMiner miner(&engine);
  decoupled::DecoupledStats last;
  for (auto _ : state) {
    auto stats = miner.Run("Baskets", "tid", "item", kSupport, kConfidence);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    last = stats.value();
    // The decoupled world pays an extra import to make rules queryable.
    auto imported = miner.ImportRules("DecoupledRules", &last);
    if (!imported.ok()) {
      state.SkipWithError(imported.status().ToString().c_str());
      return;
    }
  }
  state.counters["rules"] = static_cast<double>(last.num_rules);
  state.counters["export_ms"] = last.export_seconds * 1e3;
  state.counters["prepare_ms"] = last.prepare_seconds * 1e3;
  state.counters["mine_ms"] = last.mine_seconds * 1e3;
  state.counters["import_ms"] = last.import_seconds * 1e3;
  state.counters["flat_file_kb"] =
      static_cast<double>(last.flat_file_bytes) / 1024.0;
}
BENCHMARK(BM_Decoupled)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
