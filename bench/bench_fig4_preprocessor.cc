// Experiment Fig.4: the preprocessor's generated query programs.
//
// Prints the per-query cost/row table for (a) the simple-rule program
// (Q0..Q4, Appendix A) and (b) the general-rule program (Q5..Q11, §4.2.2),
// then benchmarks whole-program preprocessing across scales, directive
// combinations, and engine thread counts (the morsel-driven parallel axis,
// DESIGN.md §9). The parallel runs are bit-identical to the serial ones —
// --smoke verifies that before emitting its JSON.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "datagen/quest_gen.h"
#include "datagen/retail_gen.h"
#include "engine/data_mining_system.h"
#include "minerule/parser.h"
#include "preprocess/preprocessor.h"

namespace {

using namespace minerule;

const char* kSimple =
    "MINE RULE S AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD "
    "FROM Purchase GROUP BY customer EXTRACTING RULES WITH SUPPORT: 0.02, "
    "CONFIDENCE: 0.3";
const char* kGeneral =
    "MINE RULE G AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, "
    "SUPPORT, CONFIDENCE WHERE BODY.price >= 100 AND HEAD.price < 100 FROM "
    "Purchase GROUP BY customer CLUSTER BY date HAVING BODY.date < "
    "HEAD.date EXTRACTING RULES WITH SUPPORT: 0.02, CONFIDENCE: 0.3";
const char* kQuest =
    "MINE RULE Q AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD "
    "FROM Basket GROUP BY tid EXTRACTING RULES WITH SUPPORT: 0.01, "
    "CONFIDENCE: 0.3";

Result<mr::PreprocessResult> PreprocessOnce(Catalog* catalog,
                                            sql::SqlEngine* engine,
                                            const char* text) {
  MR_ASSIGN_OR_RETURN(mr::MineRuleStatement stmt, mr::ParseMineRule(text));
  mr::Translator translator(catalog);
  MR_ASSIGN_OR_RETURN(mr::Translation translation,
                      translator.Translate(stmt));
  mr::Preprocessor preprocessor(engine);
  return preprocessor.Run(stmt, translation);
}

void PrintProgramTable(const char* title, const char* text) {
  Catalog catalog;
  sql::SqlEngine engine(&catalog);
  datagen::RetailParams params;
  params.num_customers = 500;
  params.num_items = 60;
  if (!datagen::GenerateRetailTable(&catalog, "Purchase", params).ok()) {
    return;
  }
  auto result = PreprocessOnce(&catalog, &engine, text);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return;
  }
  std::printf("=== %s (500 customers) ===\n", title);
  std::printf("  %-4s %10s %10s\n", "id", "rows", "micros");
  for (const mr::QueryStat& stat : result.value().stats) {
    if (stat.id == "DDL") continue;
    std::printf("  %-4s %10lld %10lld\n", stat.id.c_str(),
                static_cast<long long>(stat.rows),
                static_cast<long long>(stat.micros));
  }
  std::printf("\n");
}

// range(0) = customers, range(1) = engine threads (morsel parallelism).
void BM_Preprocess(benchmark::State& state, const char* text) {
  Catalog catalog;
  sql::SqlEngine engine(&catalog);
  engine.set_num_threads(static_cast<int>(state.range(1)));
  datagen::RetailParams params;
  params.num_customers = state.range(0);
  params.num_items = 60;
  if (!datagen::GenerateRetailTable(&catalog, "Purchase", params).ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  for (auto _ : state) {
    auto result = PreprocessOnce(&catalog, &engine, text);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result.value().total_groups);
  }
}

void BM_PreprocessSimpleClass(benchmark::State& state) {
  BM_Preprocess(state, kSimple);
}
BENCHMARK(BM_PreprocessSimpleClass)
    ->ArgsProduct({{100, 400, 1600}, {1, 2, 8}})
    ->ArgNames({"customers", "threads"})
    ->Unit(benchmark::kMillisecond);

void BM_PreprocessGeneralClass(benchmark::State& state) {
  BM_Preprocess(state, kGeneral);
}
BENCHMARK(BM_PreprocessGeneralClass)
    ->ArgsProduct({{100, 400, 1600}, {1, 2, 8}})
    ->ArgNames({"customers", "threads"})
    ->Unit(benchmark::kMillisecond);

// The acceptance benchmark: simple-class preprocessing of an IBM Quest
// basket dataset (the workload family the paper's cited miners were
// evaluated on), swept over the thread axis at a fixed scale. The speedup
// of threads=8 over threads=1 is the number DESIGN.md §9 targets; the
// outputs are bit-identical either way.
void BM_PreprocessQuestParallel(benchmark::State& state) {
  Catalog catalog;
  sql::SqlEngine engine(&catalog);
  engine.set_num_threads(static_cast<int>(state.range(0)));
  datagen::QuestParams params;
  params.num_transactions = 4000;
  params.num_items = 500;
  if (!datagen::MaterializeQuestTable(&catalog, "Basket", params).ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  for (auto _ : state) {
    auto result = PreprocessOnce(&catalog, &engine, kQuest);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result.value().total_groups);
  }
}
BENCHMARK(BM_PreprocessQuestParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

// Directive ablation: which clauses make preprocessing expensive?
void BM_PreprocessByDirectives(benchmark::State& state) {
  static const char* kVariants[] = {
      // 0: bare simple
      "MINE RULE V AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD "
      "FROM Purchase GROUP BY customer EXTRACTING RULES WITH SUPPORT: 0.02, "
      "CONFIDENCE: 0.3",
      // 1: +G (group condition)
      "MINE RULE V AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD "
      "FROM Purchase GROUP BY customer HAVING COUNT(*) > 2 EXTRACTING RULES "
      "WITH SUPPORT: 0.02, CONFIDENCE: 0.3",
      // 2: +C (clusters, no condition)
      "MINE RULE V AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD "
      "FROM Purchase GROUP BY customer CLUSTER BY date EXTRACTING RULES "
      "WITH SUPPORT: 0.02, CONFIDENCE: 0.3",
      // 3: +C+K (cluster condition)
      "MINE RULE V AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD "
      "FROM Purchase GROUP BY customer CLUSTER BY date HAVING BODY.date < "
      "HEAD.date EXTRACTING RULES WITH SUPPORT: 0.02, CONFIDENCE: 0.3",
      // 4: +M (mining condition; Q8..Q10 run in SQL)
      "MINE RULE V AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD "
      "WHERE BODY.price >= 100 AND HEAD.price < 100 FROM Purchase GROUP BY "
      "customer EXTRACTING RULES WITH SUPPORT: 0.02, CONFIDENCE: 0.3",
      // 5: +H (distinct head schema; Q5 runs)
      "MINE RULE V AS SELECT DISTINCT 1..n item AS BODY, 1..1 date AS HEAD "
      "FROM Purchase GROUP BY customer EXTRACTING RULES WITH SUPPORT: 0.02, "
      "CONFIDENCE: 0.3",
  };
  Catalog catalog;
  sql::SqlEngine engine(&catalog);
  datagen::RetailParams params;
  params.num_customers = 400;
  params.num_items = 60;
  if (!datagen::GenerateRetailTable(&catalog, "Purchase", params).ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  const char* text = kVariants[state.range(0)];
  std::string label;
  for (auto _ : state) {
    auto result = PreprocessOnce(&catalog, &engine, text);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    label = result.value().program.coded_source.empty() ? "general" : "simple";
  }
  state.SetLabel(label);
}
BENCHMARK(BM_PreprocessByDirectives)
    ->DenseRange(0, 5)
    ->Unit(benchmark::kMillisecond);

/// Serializes every table of a catalog — names plus rows in stored order —
/// for the smoke-mode serial-vs-parallel identity check.
std::string DumpCatalog(Catalog* catalog) {
  std::vector<std::string> names = catalog->TableNames();
  std::sort(names.begin(), names.end());
  std::string dump;
  for (const std::string& name : names) {
    auto table = catalog->GetTable(name);
    if (!table.ok()) continue;
    dump += "== " + name + "\n";
    for (const Row& row : table.value()->rows()) {
      for (const Value& v : row) {
        dump += v.ToString();
        dump += '|';
      }
      dump += '\n';
    }
  }
  return dump;
}

// --smoke [--threads=N]: run both preprocessing programs on a tiny table at
// the requested thread count and emit the per-query stats (including
// per-operator plan profiles) as JSON, then check the output parses. Before
// emitting, rerun each program serially on identical data and require the
// resulting catalogs to be byte-identical — the determinism contract of
// DESIGN.md §9.
int RunSmoke(int threads) {
  struct Case {
    const char* label;
    const char* statement;
  };
  const Case cases[] = {{"simple", kSimple}, {"general", kGeneral}};
  JsonWriter w;
  w.BeginObject();
  w.Key("engine_threads").Int(ResolveThreadCount(threads));
  for (const Case& c : cases) {
    std::string dumps[2];
    for (int pass = 0; pass < 2; ++pass) {
      const int pass_threads = pass == 0 ? threads : 1;
      Catalog catalog;
      sql::SqlEngine engine(&catalog);
      engine.set_collect_operator_stats(true);
      engine.set_num_threads(pass_threads);
      datagen::RetailParams params;
      params.num_customers = 50;
      params.num_items = 30;
      auto gen = datagen::GenerateRetailTable(&catalog, "Purchase", params);
      if (!gen.ok()) {
        std::fprintf(stderr, "generation failed: %s\n",
                     gen.status().ToString().c_str());
        return 1;
      }
      auto result = PreprocessOnce(&catalog, &engine, c.statement);
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", c.label,
                     result.status().ToString().c_str());
        return 1;
      }
      dumps[pass] = DumpCatalog(&catalog);
      if (pass != 0) continue;
      w.Key(c.label).BeginArray();
      for (const mr::QueryStat& q : result.value().stats) {
        w.BeginObject();
        w.Key("id").String(q.id);
        w.Key("micros").Int(q.micros);
        w.Key("rows").Int(q.rows);
        w.Key("operators").BeginArray();
        for (const sql::OperatorProfile& op : q.operators) {
          w.BeginObject();
          w.Key("name").String(op.name);
          w.Key("depth").Int(op.depth);
          w.Key("rows").Int(op.rows);
          w.EndObject();
        }
        w.EndArray();
        w.EndObject();
      }
      w.EndArray();
    }
    if (dumps[0] != dumps[1]) {
      std::fprintf(stderr,
                   "%s: parallel (threads=%d) catalog differs from serial\n",
                   c.label, threads);
      return 1;
    }
  }
  w.EndObject();
  const std::string json = w.str();
  auto valid = ValidateJson(json);
  if (!valid.ok()) {
    std::fprintf(stderr, "smoke JSON invalid: %s\n",
                 valid.ToString().c_str());
    return 1;
  }
  std::printf("%s\nSMOKE OK\n", json.c_str());
  return 0;
}

// --spill-smoke [--threads=N]: preprocess a Quest basket dataset whose
// working set far exceeds a 64 KiB SQL memory budget, so every buffering
// operator in the generated program spills to disk (DESIGN.md §13). The run
// must complete, actually spill (nonzero sql.*.spill_bytes deltas), and
// leave a catalog byte-identical to an unbudgeted run over the same data.
int RunSpillSmoke(int threads) {
  constexpr int64_t kBudget = 64 * 1024;
  const char* kSpillCounters[] = {
      "sql.sort.spill_bytes", "sql.join.spill_bytes",
      "sql.aggregate.spill_bytes"};
  int64_t before = 0;
  for (const char* name : kSpillCounters) {
    before += GlobalMetrics().GetCounter(name)->Value();
  }
  std::string dumps[2];
  for (int pass = 0; pass < 2; ++pass) {
    Catalog catalog;
    sql::SqlEngine engine(&catalog);
    engine.set_num_threads(threads);
    if (pass == 0) engine.set_memory_limit(kBudget);
    datagen::QuestParams params;
    params.num_transactions = 2000;
    params.num_items = 300;
    auto gen = datagen::MaterializeQuestTable(&catalog, "Basket", params);
    if (!gen.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   gen.status().ToString().c_str());
      return 1;
    }
    auto result = PreprocessOnce(&catalog, &engine, kQuest);
    if (!result.ok()) {
      std::fprintf(stderr, "%s run failed: %s\n",
                   pass == 0 ? "budgeted" : "unlimited",
                   result.status().ToString().c_str());
      return 1;
    }
    dumps[pass] = DumpCatalog(&catalog);
  }
  int64_t after = 0;
  for (const char* name : kSpillCounters) {
    after += GlobalMetrics().GetCounter(name)->Value();
  }
  if (after <= before) {
    std::fprintf(stderr,
                 "budgeted run never spilled (budget=%lld bytes)\n",
                 static_cast<long long>(kBudget));
    return 1;
  }
  if (dumps[0] != dumps[1]) {
    std::fprintf(stderr,
                 "budgeted (%lld-byte) catalog differs from unlimited\n",
                 static_cast<long long>(kBudget));
    return 1;
  }
  std::printf("spill_bytes=%lld\nSPILL SMOKE OK\n",
              static_cast<long long>(after - before));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool spill_smoke = false;
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--spill-smoke") == 0) spill_smoke = true;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    }
  }
  if (spill_smoke) return RunSpillSmoke(threads);
  if (smoke) return RunSmoke(threads);
  PrintProgramTable("Figure 4a: simple-rule preprocessing program", kSimple);
  PrintProgramTable("Figure 4b: general-rule preprocessing program",
                    kGeneral);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
