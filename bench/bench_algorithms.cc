// Experiment §3 (algorithm interoperability): the pool of simple-core
// algorithms on Quest workloads, reproducing the qualitative shapes of the
// cited literature [1,3,12,13,7]:
//   - gid-list intersection wins once the vertical layout is built;
//   - DHP prunes pass-2 candidates vs plain Apriori at low supports;
//   - Partition does the work in 2 passes; Sampling in ~1 pass when the
//     sample is representative;
//   - everything degrades as minimum support drops.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/json.h"
#include "datagen/quest_gen.h"
#include "mining/simple_miner.h"

namespace {

using namespace minerule;
using mining::SimpleAlgorithm;

mining::TransactionDb& SharedDb(int64_t transactions) {
  static std::map<int64_t, mining::TransactionDb>* dbs =
      new std::map<int64_t, mining::TransactionDb>();
  auto it = dbs->find(transactions);
  if (it == dbs->end()) {
    datagen::QuestParams params;  // T10.I4, 1000 items
    params.num_transactions = transactions;
    params.avg_transaction_size = 10;
    params.avg_pattern_size = 4;
    params.num_items = 1000;
    params.num_patterns = 100;
    it = dbs->emplace(transactions, datagen::GenerateQuestDb(params)).first;
  }
  return it->second;
}

void RunMiner(benchmark::State& state, SimpleAlgorithm algorithm) {
  const int64_t transactions = state.range(0);
  const double support = static_cast<double>(state.range(1)) / 10000.0;
  // Third axis: worker threads for the parallel miners (1 = serial).
  const int threads = static_cast<int>(state.range(2));
  mining::TransactionDb& db = SharedDb(transactions);
  const int64_t min_count = mining::MinGroupCount(support, db.total_groups());
  mining::SimpleMinerOptions options;
  options.partition_count = 4;
  options.sample_rate = 0.2;
  options.num_threads = threads;
  auto miner = mining::CreateMiner(algorithm, options);

  mining::SimpleMinerStats stats;
  int64_t itemsets = 0;
  for (auto _ : state) {
    stats = {};
    auto result = miner->Mine(db, min_count, -1, &stats);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    itemsets = static_cast<int64_t>(result.value().size());
  }
  state.counters["itemsets"] = static_cast<double>(itemsets);
  state.counters["passes"] = static_cast<double>(stats.passes);
  int64_t candidates = 0;
  for (int64_t c : stats.candidates_per_level) candidates += c;
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["minsup_bp"] = static_cast<double>(state.range(1));
  state.counters["threads"] = static_cast<double>(threads);
}

#define POOL_BENCH(name, algorithm)                       \
  void name(benchmark::State& state) {                    \
    RunMiner(state, algorithm);                           \
  }                                                       \
  BENCHMARK(name)                                         \
      ->ArgsProduct({{2000}, {200, 100, 50}, {1}})        \
      ->Unit(benchmark::kMillisecond)

POOL_BENCH(BM_Apriori, SimpleAlgorithm::kApriori);
POOL_BENCH(BM_AprioriTid, SimpleAlgorithm::kAprioriTid);
POOL_BENCH(BM_GidList, SimpleAlgorithm::kGidList);
POOL_BENCH(BM_Dhp, SimpleAlgorithm::kDhp);
POOL_BENCH(BM_Partition, SimpleAlgorithm::kPartition);
POOL_BENCH(BM_Sampling, SimpleAlgorithm::kSampling);

// Database-size scaling at fixed support (the |D| sweep of [3]).
void BM_GidListScaleD(benchmark::State& state) {
  RunMiner(state, SimpleAlgorithm::kGidList);
}
BENCHMARK(BM_GidListScaleD)
    ->ArgsProduct({{1000, 4000, 16000}, {100}, {1}})
    ->Unit(benchmark::kMillisecond);

void BM_AprioriScaleD(benchmark::State& state) {
  RunMiner(state, SimpleAlgorithm::kApriori);
}
BENCHMARK(BM_AprioriScaleD)
    ->ArgsProduct({{1000, 4000, 16000}, {100}, {1}})
    ->Unit(benchmark::kMillisecond);

// Thread-count scaling of the parallel miners on a larger Quest set: the
// speedup axis of the parallel mining core (Partition mines its slices
// concurrently; Apriori/DHP count candidates over transaction ranges).
#define THREADS_BENCH(name, algorithm)                    \
  void name(benchmark::State& state) {                    \
    RunMiner(state, algorithm);                           \
  }                                                       \
  BENCHMARK(name)                                         \
      ->ArgsProduct({{16000}, {50}, {1, 2, 4, 8}})        \
      ->Unit(benchmark::kMillisecond)->UseRealTime()

THREADS_BENCH(BM_PartitionThreads, SimpleAlgorithm::kPartition);
THREADS_BENCH(BM_AprioriThreads, SimpleAlgorithm::kApriori);
THREADS_BENCH(BM_DhpThreads, SimpleAlgorithm::kDhp);

// --smoke: one run per pool member on a small Quest db, pass counters
// (including the DHP filter sizes and Partition slice sizes) emitted as
// JSON and validated.
int RunSmoke() {
  datagen::QuestParams params;
  params.num_transactions = 300;
  params.avg_transaction_size = 8;
  params.avg_pattern_size = 3;
  params.num_items = 100;
  params.num_patterns = 20;
  mining::TransactionDb db = datagen::GenerateQuestDb(params);
  const int64_t min_count = mining::MinGroupCount(0.02, db.total_groups());

  const SimpleAlgorithm algorithms[] = {
      SimpleAlgorithm::kApriori,   SimpleAlgorithm::kAprioriTid,
      SimpleAlgorithm::kGidList,   SimpleAlgorithm::kDhp,
      SimpleAlgorithm::kPartition, SimpleAlgorithm::kSampling};

  JsonWriter w;
  w.BeginObject();
  for (SimpleAlgorithm algorithm : algorithms) {
    mining::SimpleMinerOptions options;
    options.partition_count = 4;
    options.sample_rate = 0.2;
    auto miner = mining::CreateMiner(algorithm, options);
    mining::SimpleMinerStats stats;
    auto result = miner->Mine(db, min_count, -1, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", mining::SimpleAlgorithmName(algorithm),
                   result.status().ToString().c_str());
      return 1;
    }
    w.Key(mining::SimpleAlgorithmName(algorithm)).BeginObject();
    w.Key("itemsets").Int(static_cast<int64_t>(result.value().size()));
    w.Key("passes").Int(stats.passes);
    w.Key("candidates_per_level").BeginArray();
    for (int64_t c : stats.candidates_per_level) w.Int(c);
    w.EndArray();
    w.Key("large_per_level").BeginArray();
    for (int64_t c : stats.large_per_level) w.Int(c);
    w.EndArray();
    w.Key("dhp_unfiltered_pairs").Int(stats.dhp_unfiltered_pairs);
    w.Key("dhp_filtered_pairs").Int(stats.dhp_filtered_pairs);
    w.Key("partition_slice_sizes").BeginArray();
    for (int64_t s : stats.partition_slice_sizes) w.Int(s);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  const std::string json = w.str();
  auto valid = ValidateJson(json);
  if (!valid.ok()) {
    std::fprintf(stderr, "smoke JSON invalid: %s\n",
                 valid.ToString().c_str());
    return 1;
  }
  std::printf("%s\nSMOKE OK\n", json.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return RunSmoke();
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
