// Experiment §3 ("the same preprocessing could be in common to the
// execution of several data mining queries, thus saving its cost"):
// K successive queries that differ only in confidence, with the
// preprocessing cache off vs on.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "datagen/retail_gen.h"
#include "engine/data_mining_system.h"

namespace {

using namespace minerule;

std::string Statement(double confidence) {
  char text[640];
  std::snprintf(text, sizeof(text),
                "MINE RULE FollowUps AS SELECT DISTINCT 1..2 item AS BODY, "
                "1..1 item AS HEAD, SUPPORT, CONFIDENCE WHERE BODY.price >= "
                "100 AND HEAD.price < 100 FROM Purchase GROUP BY customer "
                "CLUSTER BY date HAVING BODY.date < HEAD.date EXTRACTING "
                "RULES WITH SUPPORT: 0.03, CONFIDENCE: %g",
                confidence);
  return text;
}

void RunSweep(benchmark::State& state, bool reuse) {
  Catalog catalog;
  mr::DataMiningSystem system(&catalog);
  datagen::RetailParams params;
  params.num_customers = state.range(0);
  params.num_items = 50;
  if (!datagen::GenerateRetailTable(&catalog, "Purchase", params).ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  mr::MiningOptions options;
  options.reuse_preprocessing = reuse;
  static const double kConfidences[] = {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
  double preprocess_total = 0;
  int reused = 0;
  for (auto _ : state) {
    preprocess_total = 0;
    reused = 0;
    system.InvalidateCache();
    for (double confidence : kConfidences) {
      auto stats = system.ExecuteMineRule(Statement(confidence), options);
      if (!stats.ok()) {
        state.SkipWithError(stats.status().ToString().c_str());
        return;
      }
      preprocess_total += stats.value().preprocess_seconds;
      reused += stats.value().preprocessing_reused ? 1 : 0;
    }
  }
  state.counters["queries"] = 7;
  state.counters["reused"] = reused;
  state.counters["preprocess_ms_total"] = preprocess_total * 1e3;
}

void BM_SweepNoReuse(benchmark::State& state) { RunSweep(state, false); }
BENCHMARK(BM_SweepNoReuse)->Arg(400)->Arg(1600)->Unit(benchmark::kMillisecond);

void BM_SweepWithReuse(benchmark::State& state) { RunSweep(state, true); }
BENCHMARK(BM_SweepWithReuse)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
