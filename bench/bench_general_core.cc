// Experiment §4.3.2: the general core processing algorithm.
//
//   1. Overhead of the general lattice on statements that are semantically
//      simple (the cost of generality — why the architecture keeps two core
//      variants, Figure 3.b).
//   2. Lattice growth as cluster counts rise.
//   3. The parent-choice heuristic ("start from the set with lower
//      cardinality") vs always-body-extension, measured by candidate count.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "datagen/quest_gen.h"
#include "mining/core_operator.h"

namespace {

using namespace minerule;
using mining::CodedSourceData;
using mining::CoreDirectives;

CodedSourceData SimpleShapedData(int64_t groups, int num_items,
                                 double density, uint64_t seed) {
  Random rng(seed);
  CodedSourceData data;
  data.total_groups = groups;
  for (int64_t g = 1; g <= groups; ++g) {
    for (int item = 1; item <= num_items; ++item) {
      if (rng.NextBool(density)) {
        data.simple_pairs.emplace_back(static_cast<mining::Gid>(g),
                                       static_cast<mining::ItemId>(item));
        data.body_rows.push_back({static_cast<mining::Gid>(g),
                                  mining::kNoCluster,
                                  static_cast<mining::ItemId>(item)});
      }
    }
  }
  return data;
}

void BM_SimpleCoreOnSimpleClass(benchmark::State& state) {
  CodedSourceData data = SimpleShapedData(state.range(0), 30, 0.3, 11);
  CoreDirectives directives;  // simple
  int64_t rules = 0;
  for (auto _ : state) {
    mining::CoreStats stats;
    auto result = RunCoreOperator(data, directives, 0.1, 0.3, {1, -1},
                                  {1, -1}, mining::CoreOptions{}, &stats);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    rules = stats.rules_found;
  }
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_SimpleCoreOnSimpleClass)
    ->Arg(200)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_GeneralCoreOnSimpleClass(benchmark::State& state) {
  CodedSourceData data = SimpleShapedData(state.range(0), 30, 0.3, 11);
  CoreDirectives directives;
  directives.general = true;  // force the lattice algorithm
  int64_t rules = 0;
  for (auto _ : state) {
    mining::CoreStats stats;
    auto result = RunCoreOperator(data, directives, 0.1, 0.3, {1, -1},
                                  {1, -1}, mining::CoreOptions{}, &stats);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    rules = stats.rules_found;
  }
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_GeneralCoreOnSimpleClass)
    ->Arg(200)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

/// Thread-count scaling of the general core: the m×n lattice cells of one
/// level are evaluated concurrently, so wider levels (more items, looser
/// cardinality windows) parallelize across the shared pool.
void BM_GeneralCoreThreads(benchmark::State& state) {
  CodedSourceData data = SimpleShapedData(500, 40, 0.3, 11);
  CoreDirectives directives;
  directives.general = true;
  mining::CoreOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  int64_t rules = 0;
  for (auto _ : state) {
    mining::CoreStats stats;
    auto result = RunCoreOperator(data, directives, 0.1, 0.3, {1, 3}, {1, 3},
                                  options, &stats);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    rules = stats.rules_found;
  }
  state.counters["rules"] = static_cast<double>(rules);
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_GeneralCoreThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Lattice growth with the number of clusters per group: items spread over
/// k clusters; all pairs valid.
void BM_GeneralCoreClusterCount(benchmark::State& state) {
  const int clusters = static_cast<int>(state.range(0));
  Random rng(7);
  CodedSourceData data;
  const int64_t groups = 300;
  data.total_groups = groups;
  for (int64_t g = 1; g <= groups; ++g) {
    for (int item = 1; item <= 24; ++item) {
      if (rng.NextBool(0.25)) {
        const mining::Cid cid =
            static_cast<mining::Cid>(1 + rng.NextBounded(clusters));
        data.body_rows.push_back({static_cast<mining::Gid>(g), cid,
                                  static_cast<mining::ItemId>(item)});
      }
    }
  }
  CoreDirectives directives;
  directives.general = true;
  directives.has_clusters = true;
  int64_t elementary = 0;
  for (auto _ : state) {
    mining::CoreStats stats;
    auto result = RunCoreOperator(data, directives, 0.05, 0.3, {1, -1},
                                  {1, -1}, mining::CoreOptions{}, &stats);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    elementary = stats.general.elementary_rules;
  }
  state.counters["elementary"] = static_cast<double>(elementary);
  state.counters["clusters"] = static_cast<double>(clusters);
}
BENCHMARK(BM_GeneralCoreClusterCount)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Asymmetric head/body universes stress the §4.3.2 parent-choice rule:
/// few body items x many head items makes head extension the cheap parent.
void BM_GeneralCoreAsymmetric(benchmark::State& state) {
  Random rng(23);
  CodedSourceData data;
  const int64_t groups = 250;
  data.total_groups = groups;
  const int body_items = 6;
  const int head_items = static_cast<int>(state.range(0));
  for (int64_t g = 1; g <= groups; ++g) {
    for (int item = 1; item <= body_items; ++item) {
      if (rng.NextBool(0.5)) {
        data.body_rows.push_back({static_cast<mining::Gid>(g),
                                  mining::kNoCluster,
                                  static_cast<mining::ItemId>(item)});
      }
    }
    for (int item = 1; item <= head_items; ++item) {
      if (rng.NextBool(0.4)) {
        data.head_rows.push_back({static_cast<mining::Gid>(g),
                                  mining::kNoCluster,
                                  static_cast<mining::ItemId>(item)});
      }
    }
  }
  CoreDirectives directives;
  directives.general = true;
  directives.distinct_head = true;
  int64_t body_ext_sets = 0, head_ext_sets = 0;
  for (auto _ : state) {
    mining::CoreStats stats;
    auto result = RunCoreOperator(data, directives, 0.1, 0.2, {1, 3}, {1, 3},
                                  mining::CoreOptions{}, &stats);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    body_ext_sets = head_ext_sets = 0;
    for (const auto& set : stats.general.sets) {
      (set.from_body_extension ? body_ext_sets : head_ext_sets) += 1;
    }
  }
  state.counters["body_ext_sets"] = static_cast<double>(body_ext_sets);
  state.counters["head_ext_sets"] = static_cast<double>(head_ext_sets);
}
BENCHMARK(BM_GeneralCoreAsymmetric)
    ->Arg(6)
    ->Arg(18)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
