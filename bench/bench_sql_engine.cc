// Substrate benchmark: the embedded SQL engine's primitive operations —
// the building blocks every generated Q0..Q11 program decomposes into.
// The architecture assumes these are "effectively and efficiently evaluated
// by the SQL server itself" (§3); this binary quantifies that for our
// server, on both the volcano row path and the columnar vectorized path
// (DESIGN.md §12): benchmark arg 1 is the vectorized knob (0 = row, 1 =
// vectorized).
//
//   bench_sql_engine                # full Google-benchmark sweep
//   bench_sql_engine --smoke        # CI gate: row vs vectorized differential
//                                   # + timing check, JSON report, "SMOKE OK"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "relational/catalog.h"
#include "sql/engine.h"
#include "sql/parser.h"

namespace {

using namespace minerule;

void FillTables(Catalog* catalog, int64_t rows) {
  Random rng(77);
  {
    auto table = catalog->CreateTable(
        "facts", Schema({{"id", DataType::kInteger},
                         {"grp", DataType::kInteger},
                         {"val", DataType::kDouble},
                         {"tag", DataType::kString}}));
    for (int64_t i = 0; i < rows; ++i) {
      table.value()->AppendUnchecked(
          {Value::Integer(i), Value::Integer(static_cast<int64_t>(
                                  rng.NextBounded(rows / 10 + 1))),
           Value::Double(rng.NextDouble() * 100),
           Value::String("tag" + std::to_string(rng.NextBounded(50)))});
    }
  }
  {
    auto table = catalog->CreateTable(
        "dims", Schema({{"grp", DataType::kInteger},
                        {"name", DataType::kString}}));
    for (int64_t g = 0; g <= rows / 10; ++g) {
      table.value()->AppendUnchecked(
          {Value::Integer(g), Value::String("g" + std::to_string(g))});
    }
  }
}

class EngineFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    catalog_ = std::make_unique<Catalog>();
    engine_ = std::make_unique<sql::SqlEngine>(catalog_.get());
    engine_->set_vectorized(state.range(1) == 1);
    FillTables(catalog_.get(), state.range(0));
  }
  void TearDown(const benchmark::State&) override {
    engine_.reset();
    catalog_.reset();
  }

 protected:
  void Run(benchmark::State& state, const std::string& sql) {
    int64_t rows = 0;
    for (auto _ : state) {
      auto result = engine_->Execute(sql);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      rows = static_cast<int64_t>(result.value().rows.size());
    }
    state.counters["out_rows"] = static_cast<double>(rows);
    state.SetItemsProcessed(state.iterations() * state.range(0));
  }

  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<sql::SqlEngine> engine_;
};

// {rows} x {row path, vectorized path}.
const std::vector<std::vector<int64_t>> kRowsByEngine = {{10000, 100000},
                                                         {0, 1}};
// Shapes with no vectorized specialization: row path only.
const std::vector<std::vector<int64_t>> kRowsRowOnly = {{10000, 100000}, {0}};

BENCHMARK_DEFINE_F(EngineFixture, Scan)(benchmark::State& state) {
  Run(state, "SELECT id, val FROM facts");
}
BENCHMARK_REGISTER_F(EngineFixture, Scan)
    ->ArgsProduct(kRowsByEngine)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, Filter)(benchmark::State& state) {
  Run(state, "SELECT id FROM facts WHERE val > 90.0");
}
BENCHMARK_REGISTER_F(EngineFixture, Filter)
    ->ArgsProduct(kRowsByEngine)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, HashJoin)(benchmark::State& state) {
  Run(state,
      "SELECT f.id, d.name FROM facts f, dims d WHERE f.grp = d.grp");
}
BENCHMARK_REGISTER_F(EngineFixture, HashJoin)
    ->ArgsProduct(kRowsByEngine)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, GroupByAggregate)(benchmark::State& state) {
  Run(state,
      "SELECT grp, COUNT(*), SUM(val) FROM facts GROUP BY grp "
      "HAVING COUNT(*) > 5");
}
BENCHMARK_REGISTER_F(EngineFixture, GroupByAggregate)
    ->ArgsProduct(kRowsByEngine)
    ->Unit(benchmark::kMillisecond);

// The Q-pool shape: int-keyed join feeding an int-keyed aggregation, the
// skeleton of the preprocessor's Q4/Q7-style programs.
BENCHMARK_DEFINE_F(EngineFixture, JoinThenGroupBy)(benchmark::State& state) {
  Run(state,
      "SELECT d.grp, COUNT(*), SUM(f.val) FROM facts f, dims d "
      "WHERE f.grp = d.grp GROUP BY d.grp");
}
BENCHMARK_REGISTER_F(EngineFixture, JoinThenGroupBy)
    ->ArgsProduct(kRowsByEngine)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, CountDistinct)(benchmark::State& state) {
  Run(state, "SELECT COUNT(DISTINCT grp) FROM facts");
}
BENCHMARK_REGISTER_F(EngineFixture, CountDistinct)
    ->ArgsProduct(kRowsRowOnly)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, Distinct)(benchmark::State& state) {
  Run(state, "SELECT DISTINCT tag FROM facts");
}
BENCHMARK_REGISTER_F(EngineFixture, Distinct)
    ->ArgsProduct(kRowsRowOnly)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, Sort)(benchmark::State& state) {
  Run(state, "SELECT id FROM facts ORDER BY val DESC LIMIT 100");
}
BENCHMARK_REGISTER_F(EngineFixture, Sort)
    ->ArgsProduct(kRowsRowOnly)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, InsertSelect)(benchmark::State& state) {
  (void)engine_->Execute("CREATE TABLE sink (id INTEGER, val DOUBLE)");
  int64_t inserted = 0;
  for (auto _ : state) {
    (void)engine_->Execute("DELETE FROM sink");
    auto result = engine_->Execute(
        "INSERT INTO sink (SELECT id, val FROM facts WHERE val > 50.0)");
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    inserted = result.value().affected_rows;
  }
  state.counters["inserted"] = static_cast<double>(inserted);
}
BENCHMARK_REGISTER_F(EngineFixture, InsertSelect)
    ->ArgsProduct(kRowsRowOnly)
    ->Unit(benchmark::kMillisecond);

void BM_ParseOnly(benchmark::State& state) {
  const char* sql =
      "SELECT DISTINCT V.Gid, B.Bid FROM Source AS S, ValidGroups AS V, "
      "Bset AS B WHERE S.customer = V.customer AND S.item = B.item";
  for (auto _ : state) {
    auto tokens = sql::ParseSqlScript(sql);
    benchmark::DoNotOptimize(tokens.ok());
  }
}
BENCHMARK(BM_ParseOnly);

// ---------------------------------------------------------------------------
// --smoke: the CI gate (DESIGN.md §12). Runs the int-keyed hot paths on both
// engines, requires byte-identical results, and requires the vectorized path
// to be no slower than the row path on the checked shapes (small tolerance
// for shared-runner noise) with a real improvement on at least one Q-pool
// shape. Prints one JSON object per query and a final SMOKE OK / SMOKE FAIL.

struct SmokeQuery {
  const char* name;
  const char* sql;
  bool checked;  // participates in the timing gate
};

std::string RenderResult(const sql::QueryResult& result) {
  std::string out;
  for (const Row& row : result.rows) {
    for (const Value& v : row) {
      out += v.ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

int RunSmoke() {
  constexpr int64_t kRows = 20000;
  constexpr int kReps = 5;
  constexpr double kTolerance = 1.10;
  Catalog catalog;
  sql::SqlEngine engine(&catalog);
  FillTables(&catalog, kRows);

  const SmokeQuery queries[] = {
      {"filter_double", "SELECT id FROM facts WHERE val > 90.0", false},
      {"filter_int", "SELECT id FROM facts WHERE grp >= 1000", false},
      {"hash_join_int", "SELECT f.id, d.name FROM facts f, dims d "
                        "WHERE f.grp = d.grp", true},
      {"group_by_int", "SELECT grp, COUNT(*), SUM(val), MIN(val), MAX(val) "
                       "FROM facts GROUP BY grp", true},
      {"join_then_group", "SELECT d.grp, COUNT(*), SUM(f.val) FROM facts f, "
                          "dims d WHERE f.grp = d.grp GROUP BY d.grp", true},
  };

  bool ok = true;
  int improved = 0;
  std::printf("[\n");
  for (size_t qi = 0; qi < sizeof(queries) / sizeof(queries[0]); ++qi) {
    const SmokeQuery& q = queries[qi];
    double best_ms[2] = {1e300, 1e300};
    std::string dump[2];
    for (int vec = 0; vec < 2; ++vec) {
      engine.set_vectorized(vec == 1);
      for (int rep = 0; rep < kReps; ++rep) {
        auto start = std::chrono::steady_clock::now();
        auto result = engine.Execute(q.sql);
        auto stop = std::chrono::steady_clock::now();
        if (!result.ok()) {
          std::printf("]\nSMOKE FAIL %s (%s): %s\n", q.name,
                      vec ? "vectorized" : "row",
                      result.status().ToString().c_str());
          return 1;
        }
        double ms = std::chrono::duration<double, std::milli>(stop - start)
                        .count();
        if (ms < best_ms[vec]) best_ms[vec] = ms;
        if (rep == 0) dump[vec] = RenderResult(result.value());
      }
    }
    if (dump[0] != dump[1]) {
      std::printf("]\nSMOKE FAIL %s: vectorized result differs from row\n",
                  q.name);
      return 1;
    }
    const double speedup = best_ms[0] / best_ms[1];
    const bool pass = !q.checked || best_ms[1] <= best_ms[0] * kTolerance;
    std::printf("  {\"query\": \"%s\", \"row_ms\": %.3f, \"vec_ms\": %.3f, "
                "\"speedup\": %.2f, \"checked\": %s, \"pass\": %s}%s\n",
                q.name, best_ms[0], best_ms[1], speedup,
                q.checked ? "true" : "false", pass ? "true" : "false",
                qi + 1 < sizeof(queries) / sizeof(queries[0]) ? "," : "");
    if (!pass) ok = false;
    if (q.checked && speedup > 1.0) ++improved;
  }
  std::printf("]\n");
  if (ok && improved == 0) {
    std::printf("SMOKE FAIL: no checked query improved over the row path\n");
    return 1;
  }
  if (!ok) {
    std::printf("SMOKE FAIL: vectorized slower than row path\n");
    return 1;
  }
  std::printf("SMOKE OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return RunSmoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
