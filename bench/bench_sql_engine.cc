// Substrate benchmark: the embedded SQL engine's primitive operations —
// the building blocks every generated Q0..Q11 program decomposes into.
// The architecture assumes these are "effectively and efficiently evaluated
// by the SQL server itself" (§3); this binary quantifies that for our
// server.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "relational/catalog.h"
#include "sql/engine.h"
#include "sql/parser.h"

namespace {

using namespace minerule;

void FillTables(Catalog* catalog, int64_t rows) {
  Random rng(77);
  {
    auto table = catalog->CreateTable(
        "facts", Schema({{"id", DataType::kInteger},
                         {"grp", DataType::kInteger},
                         {"val", DataType::kDouble},
                         {"tag", DataType::kString}}));
    for (int64_t i = 0; i < rows; ++i) {
      table.value()->AppendUnchecked(
          {Value::Integer(i), Value::Integer(static_cast<int64_t>(
                                  rng.NextBounded(rows / 10 + 1))),
           Value::Double(rng.NextDouble() * 100),
           Value::String("tag" + std::to_string(rng.NextBounded(50)))});
    }
  }
  {
    auto table = catalog->CreateTable(
        "dims", Schema({{"grp", DataType::kInteger},
                        {"name", DataType::kString}}));
    for (int64_t g = 0; g <= rows / 10; ++g) {
      table.value()->AppendUnchecked(
          {Value::Integer(g), Value::String("g" + std::to_string(g))});
    }
  }
}

class EngineFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    catalog_ = std::make_unique<Catalog>();
    engine_ = std::make_unique<sql::SqlEngine>(catalog_.get());
    FillTables(catalog_.get(), state.range(0));
  }
  void TearDown(const benchmark::State&) override {
    engine_.reset();
    catalog_.reset();
  }

 protected:
  void Run(benchmark::State& state, const std::string& sql) {
    int64_t rows = 0;
    for (auto _ : state) {
      auto result = engine_->Execute(sql);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      rows = static_cast<int64_t>(result.value().rows.size());
    }
    state.counters["out_rows"] = static_cast<double>(rows);
    state.SetItemsProcessed(state.iterations() * state.range(0));
  }

  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<sql::SqlEngine> engine_;
};

BENCHMARK_DEFINE_F(EngineFixture, Scan)(benchmark::State& state) {
  Run(state, "SELECT id, val FROM facts");
}
BENCHMARK_REGISTER_F(EngineFixture, Scan)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, Filter)(benchmark::State& state) {
  Run(state, "SELECT id FROM facts WHERE val > 90.0");
}
BENCHMARK_REGISTER_F(EngineFixture, Filter)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, HashJoin)(benchmark::State& state) {
  Run(state,
      "SELECT f.id, d.name FROM facts f, dims d WHERE f.grp = d.grp");
}
BENCHMARK_REGISTER_F(EngineFixture, HashJoin)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, GroupByAggregate)(benchmark::State& state) {
  Run(state,
      "SELECT grp, COUNT(*), SUM(val) FROM facts GROUP BY grp "
      "HAVING COUNT(*) > 5");
}
BENCHMARK_REGISTER_F(EngineFixture, GroupByAggregate)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, CountDistinct)(benchmark::State& state) {
  Run(state, "SELECT COUNT(DISTINCT grp) FROM facts");
}
BENCHMARK_REGISTER_F(EngineFixture, CountDistinct)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, Distinct)(benchmark::State& state) {
  Run(state, "SELECT DISTINCT tag FROM facts");
}
BENCHMARK_REGISTER_F(EngineFixture, Distinct)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, Sort)(benchmark::State& state) {
  Run(state, "SELECT id FROM facts ORDER BY val DESC LIMIT 100");
}
BENCHMARK_REGISTER_F(EngineFixture, Sort)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, InsertSelect)(benchmark::State& state) {
  (void)engine_->Execute("CREATE TABLE sink (id INTEGER, val DOUBLE)");
  int64_t inserted = 0;
  for (auto _ : state) {
    (void)engine_->Execute("DELETE FROM sink");
    auto result = engine_->Execute(
        "INSERT INTO sink (SELECT id, val FROM facts WHERE val > 50.0)");
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    inserted = result.value().affected_rows;
  }
  state.counters["inserted"] = static_cast<double>(inserted);
}
BENCHMARK_REGISTER_F(EngineFixture, InsertSelect)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_ParseOnly(benchmark::State& state) {
  const char* sql =
      "SELECT DISTINCT V.Gid, B.Bid FROM Source AS S, ValidGroups AS V, "
      "Bset AS B WHERE S.customer = V.customer AND S.item = B.item";
  for (auto _ : state) {
    auto tokens = sql::ParseSqlScript(sql);
    benchmark::DoNotOptimize(tokens.ok());
  }
}
BENCHMARK(BM_ParseOnly);

}  // namespace

BENCHMARK_MAIN();
