// Substrate benchmark: the embedded SQL engine's primitive operations —
// the building blocks every generated Q0..Q11 program decomposes into.
// The architecture assumes these are "effectively and efficiently evaluated
// by the SQL server itself" (§3); this binary quantifies that for our
// server, on both the volcano row path and the columnar vectorized path
// (DESIGN.md §12): benchmark arg 1 is the vectorized knob (0 = row, 1 =
// vectorized).
//
//   bench_sql_engine                # full Google-benchmark sweep
//   bench_sql_engine --smoke        # CI gate: row vs vectorized differential
//                                   # + timing check, JSON report, "SMOKE OK"
//   bench_sql_engine --plan-smoke   # CI gate: cost-based planning (DESIGN.md
//                                   # §14) vs the syntactic planner on skewed
//                                   # retail data + adaptive core-algorithm
//                                   # selection, JSON report, "PLAN SMOKE OK"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/random.h"
#include "datagen/quest_gen.h"
#include "datagen/retail_gen.h"
#include "mining/simple_miner.h"
#include "relational/catalog.h"
#include "sql/engine.h"
#include "sql/parser.h"

namespace {

using namespace minerule;

void FillTables(Catalog* catalog, int64_t rows) {
  Random rng(77);
  {
    auto table = catalog->CreateTable(
        "facts", Schema({{"id", DataType::kInteger},
                         {"grp", DataType::kInteger},
                         {"val", DataType::kDouble},
                         {"tag", DataType::kString}}));
    for (int64_t i = 0; i < rows; ++i) {
      table.value()->AppendUnchecked(
          {Value::Integer(i), Value::Integer(static_cast<int64_t>(
                                  rng.NextBounded(rows / 10 + 1))),
           Value::Double(rng.NextDouble() * 100),
           Value::String("tag" + std::to_string(rng.NextBounded(50)))});
    }
  }
  {
    auto table = catalog->CreateTable(
        "dims", Schema({{"grp", DataType::kInteger},
                        {"name", DataType::kString}}));
    for (int64_t g = 0; g <= rows / 10; ++g) {
      table.value()->AppendUnchecked(
          {Value::Integer(g), Value::String("g" + std::to_string(g))});
    }
  }
}

class EngineFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    catalog_ = std::make_unique<Catalog>();
    engine_ = std::make_unique<sql::SqlEngine>(catalog_.get());
    engine_->set_vectorized(state.range(1) == 1);
    FillTables(catalog_.get(), state.range(0));
  }
  void TearDown(const benchmark::State&) override {
    engine_.reset();
    catalog_.reset();
  }

 protected:
  void Run(benchmark::State& state, const std::string& sql) {
    int64_t rows = 0;
    for (auto _ : state) {
      auto result = engine_->Execute(sql);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      rows = static_cast<int64_t>(result.value().rows.size());
    }
    state.counters["out_rows"] = static_cast<double>(rows);
    state.SetItemsProcessed(state.iterations() * state.range(0));
  }

  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<sql::SqlEngine> engine_;
};

// {rows} x {row path, vectorized path}.
const std::vector<std::vector<int64_t>> kRowsByEngine = {{10000, 100000},
                                                         {0, 1}};
// Shapes with no vectorized specialization: row path only.
const std::vector<std::vector<int64_t>> kRowsRowOnly = {{10000, 100000}, {0}};

BENCHMARK_DEFINE_F(EngineFixture, Scan)(benchmark::State& state) {
  Run(state, "SELECT id, val FROM facts");
}
BENCHMARK_REGISTER_F(EngineFixture, Scan)
    ->ArgsProduct(kRowsByEngine)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, Filter)(benchmark::State& state) {
  Run(state, "SELECT id FROM facts WHERE val > 90.0");
}
BENCHMARK_REGISTER_F(EngineFixture, Filter)
    ->ArgsProduct(kRowsByEngine)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, HashJoin)(benchmark::State& state) {
  Run(state,
      "SELECT f.id, d.name FROM facts f, dims d WHERE f.grp = d.grp");
}
BENCHMARK_REGISTER_F(EngineFixture, HashJoin)
    ->ArgsProduct(kRowsByEngine)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, GroupByAggregate)(benchmark::State& state) {
  Run(state,
      "SELECT grp, COUNT(*), SUM(val) FROM facts GROUP BY grp "
      "HAVING COUNT(*) > 5");
}
BENCHMARK_REGISTER_F(EngineFixture, GroupByAggregate)
    ->ArgsProduct(kRowsByEngine)
    ->Unit(benchmark::kMillisecond);

// The Q-pool shape: int-keyed join feeding an int-keyed aggregation, the
// skeleton of the preprocessor's Q4/Q7-style programs.
BENCHMARK_DEFINE_F(EngineFixture, JoinThenGroupBy)(benchmark::State& state) {
  Run(state,
      "SELECT d.grp, COUNT(*), SUM(f.val) FROM facts f, dims d "
      "WHERE f.grp = d.grp GROUP BY d.grp");
}
BENCHMARK_REGISTER_F(EngineFixture, JoinThenGroupBy)
    ->ArgsProduct(kRowsByEngine)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, CountDistinct)(benchmark::State& state) {
  Run(state, "SELECT COUNT(DISTINCT grp) FROM facts");
}
BENCHMARK_REGISTER_F(EngineFixture, CountDistinct)
    ->ArgsProduct(kRowsRowOnly)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, Distinct)(benchmark::State& state) {
  Run(state, "SELECT DISTINCT tag FROM facts");
}
BENCHMARK_REGISTER_F(EngineFixture, Distinct)
    ->ArgsProduct(kRowsRowOnly)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, Sort)(benchmark::State& state) {
  Run(state, "SELECT id FROM facts ORDER BY val DESC LIMIT 100");
}
BENCHMARK_REGISTER_F(EngineFixture, Sort)
    ->ArgsProduct(kRowsRowOnly)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(EngineFixture, InsertSelect)(benchmark::State& state) {
  (void)engine_->Execute("CREATE TABLE sink (id INTEGER, val DOUBLE)");
  int64_t inserted = 0;
  for (auto _ : state) {
    (void)engine_->Execute("DELETE FROM sink");
    auto result = engine_->Execute(
        "INSERT INTO sink (SELECT id, val FROM facts WHERE val > 50.0)");
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    inserted = result.value().affected_rows;
  }
  state.counters["inserted"] = static_cast<double>(inserted);
}
BENCHMARK_REGISTER_F(EngineFixture, InsertSelect)
    ->ArgsProduct(kRowsRowOnly)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Skewed-join axis (EXPERIMENTS.md): facts.grp drawn uniform or Zipf(1.0)
// over the dim keys, with the small dim FIRST in the FROM list — the order a
// naive statement writer produces and the worst case for the syntactic
// planner, which always builds the hash table over the right (big) input.
// Arg 2 toggles the cost-based planner (DESIGN.md §14), so the
// {uniform, zipf} x {syntactic, cost-based} grid quantifies what the
// build-side choice buys as skew grows.

void FillSkewTables(Catalog* catalog, int64_t rows, bool zipf) {
  const int64_t groups = rows / 100 + 1;
  std::vector<double> cdf;
  if (zipf) {
    cdf.resize(static_cast<size_t>(groups));
    double total = 0;
    for (int64_t g = 0; g < groups; ++g) {
      total += 1.0 / static_cast<double>(g + 1);
      cdf[static_cast<size_t>(g)] = total;
    }
    for (double& c : cdf) c /= total;
  }
  Random rng(77);
  auto facts = catalog->CreateTable(
      "facts", Schema({{"id", DataType::kInteger},
                       {"grp", DataType::kInteger},
                       {"val", DataType::kDouble}}));
  for (int64_t i = 0; i < rows; ++i) {
    int64_t g;
    if (zipf) {
      const double u = rng.NextDouble();
      g = static_cast<int64_t>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    } else {
      g = static_cast<int64_t>(rng.NextBounded(groups));
    }
    facts.value()->AppendUnchecked({Value::Integer(i), Value::Integer(g),
                                    Value::Double(rng.NextDouble() * 100)});
  }
  auto dims = catalog->CreateTable(
      "dims", Schema({{"grp", DataType::kInteger},
                      {"name", DataType::kString}}));
  for (int64_t g = 0; g < groups; ++g) {
    dims.value()->AppendUnchecked(
        {Value::Integer(g), Value::String("g" + std::to_string(g))});
  }
}

class SkewFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    catalog_ = std::make_unique<Catalog>();
    engine_ = std::make_unique<sql::SqlEngine>(catalog_.get());
    FillSkewTables(catalog_.get(), state.range(0), state.range(1) == 1);
    engine_->set_cost_based(state.range(2) == 1);
    (void)engine_->Execute("ANALYZE");
  }
  void TearDown(const benchmark::State&) override {
    engine_.reset();
    catalog_.reset();
  }

 protected:
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<sql::SqlEngine> engine_;
};

BENCHMARK_DEFINE_F(SkewFixture, SmallDimFirstJoin)(benchmark::State& state) {
  const std::string sql =
      "SELECT d.name, f.val FROM dims d, facts f WHERE d.grp = f.grp";
  int64_t rows = 0;
  for (auto _ : state) {
    auto result = engine_->Execute(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    rows = static_cast<int64_t>(result.value().rows.size());
  }
  state.counters["out_rows"] = static_cast<double>(rows);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
// {rows} x {uniform, zipf} x {syntactic, cost-based}.
BENCHMARK_REGISTER_F(SkewFixture, SmallDimFirstJoin)
    ->ArgsProduct({{100000}, {0, 1}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_ParseOnly(benchmark::State& state) {
  const char* sql =
      "SELECT DISTINCT V.Gid, B.Bid FROM Source AS S, ValidGroups AS V, "
      "Bset AS B WHERE S.customer = V.customer AND S.item = B.item";
  for (auto _ : state) {
    auto tokens = sql::ParseSqlScript(sql);
    benchmark::DoNotOptimize(tokens.ok());
  }
}
BENCHMARK(BM_ParseOnly);

// ---------------------------------------------------------------------------
// --smoke: the CI gate (DESIGN.md §12). Runs the int-keyed hot paths on both
// engines, requires byte-identical results, and requires the vectorized path
// to be no slower than the row path on the checked shapes (small tolerance
// for shared-runner noise) with a real improvement on at least one Q-pool
// shape. Prints one JSON object per query and a final SMOKE OK / SMOKE FAIL.

struct SmokeQuery {
  const char* name;
  const char* sql;
  bool checked;  // participates in the timing gate
};

std::string RenderResult(const sql::QueryResult& result) {
  std::string out;
  for (const Row& row : result.rows) {
    for (const Value& v : row) {
      out += v.ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

int RunSmoke() {
  constexpr int64_t kRows = 20000;
  constexpr int kReps = 5;
  constexpr double kTolerance = 1.10;
  Catalog catalog;
  sql::SqlEngine engine(&catalog);
  FillTables(&catalog, kRows);

  const SmokeQuery queries[] = {
      {"filter_double", "SELECT id FROM facts WHERE val > 90.0", false},
      {"filter_int", "SELECT id FROM facts WHERE grp >= 1000", false},
      {"hash_join_int", "SELECT f.id, d.name FROM facts f, dims d "
                        "WHERE f.grp = d.grp", true},
      {"group_by_int", "SELECT grp, COUNT(*), SUM(val), MIN(val), MAX(val) "
                       "FROM facts GROUP BY grp", true},
      {"join_then_group", "SELECT d.grp, COUNT(*), SUM(f.val) FROM facts f, "
                          "dims d WHERE f.grp = d.grp GROUP BY d.grp", true},
  };

  bool ok = true;
  int improved = 0;
  std::printf("[\n");
  for (size_t qi = 0; qi < sizeof(queries) / sizeof(queries[0]); ++qi) {
    const SmokeQuery& q = queries[qi];
    double best_ms[2] = {1e300, 1e300};
    std::string dump[2];
    for (int vec = 0; vec < 2; ++vec) {
      engine.set_vectorized(vec == 1);
      for (int rep = 0; rep < kReps; ++rep) {
        auto start = std::chrono::steady_clock::now();
        auto result = engine.Execute(q.sql);
        auto stop = std::chrono::steady_clock::now();
        if (!result.ok()) {
          std::printf("]\nSMOKE FAIL %s (%s): %s\n", q.name,
                      vec ? "vectorized" : "row",
                      result.status().ToString().c_str());
          return 1;
        }
        double ms = std::chrono::duration<double, std::milli>(stop - start)
                        .count();
        if (ms < best_ms[vec]) best_ms[vec] = ms;
        if (rep == 0) dump[vec] = RenderResult(result.value());
      }
    }
    if (dump[0] != dump[1]) {
      std::printf("]\nSMOKE FAIL %s: vectorized result differs from row\n",
                  q.name);
      return 1;
    }
    const double speedup = best_ms[0] / best_ms[1];
    const bool pass = !q.checked || best_ms[1] <= best_ms[0] * kTolerance;
    std::printf("  {\"query\": \"%s\", \"row_ms\": %.3f, \"vec_ms\": %.3f, "
                "\"speedup\": %.2f, \"checked\": %s, \"pass\": %s}%s\n",
                q.name, best_ms[0], best_ms[1], speedup,
                q.checked ? "true" : "false", pass ? "true" : "false",
                qi + 1 < sizeof(queries) / sizeof(queries[0]) ? "," : "");
    if (!pass) ok = false;
    if (q.checked && speedup > 1.0) ++improved;
  }
  std::printf("]\n");
  if (ok && improved == 0) {
    std::printf("SMOKE FAIL: no checked query improved over the row path\n");
    return 1;
  }
  if (!ok) {
    std::printf("SMOKE FAIL: vectorized slower than row path\n");
    return 1;
  }
  std::printf("SMOKE OK\n");
  return 0;
}

// ---------------------------------------------------------------------------
// --plan-smoke: the cost-based planning CI gate (DESIGN.md §14). Two parts:
//
//  1. SQL planning on skewed retail data: every query runs under the
//     syntactic planner and the cost-based planner; results must be
//     byte-identical, the cost-based plan must never be > 5% slower, and at
//     least one `checked` shape (build-side swap, join reorder) must improve
//     by >= 1.15x.
//  2. Adaptive core-algorithm selection: MINE-RULE's simple core with
//     algorithm=auto vs the static default (gidlist) on shapes where the
//     choice matters; identical rules, never > 5% slower, >= 1.15x on a
//     `checked` shape.
//
// Emits one validated JSON report and PLAN SMOKE OK / PLAN SMOKE FAIL.

struct PlanQuery {
  const char* name;
  const char* sql;
  bool checked;  // expected to improve under cost-based planning
};

int RunPlanSmoke() {
  constexpr int kReps = 5;
  constexpr double kSlowdownTolerance = 1.05;
  constexpr double kRequiredSpeedup = 1.15;

  Catalog catalog;
  sql::SqlEngine engine(&catalog);

  // Skewed retail data: ~90k purchases over ~200 items, so the purchase
  // table fans out ~450:1 against the per-item dim tables built below.
  datagen::RetailParams rp;
  rp.num_customers = 3000;
  rp.num_items = 200;
  rp.visits_per_customer = 6;
  rp.items_per_visit = 5;
  auto purchase = datagen::GenerateRetailTable(&catalog, "purchase", rp);
  if (!purchase.ok()) {
    std::fprintf(stderr, "retail gen: %s\n",
                 purchase.status().ToString().c_str());
    return 1;
  }
  {
    // product: one row per item; promo: three rows per item. Built from the
    // generated item universe so the join keys actually match.
    auto items = engine.Execute("SELECT DISTINCT item FROM purchase");
    if (!items.ok()) {
      std::fprintf(stderr, "item scan: %s\n",
                   items.status().ToString().c_str());
      return 1;
    }
    auto product = catalog.CreateTable(
        "product", Schema({{"item", DataType::kString},
                           {"pid", DataType::kInteger}}));
    // returns / restock: ~2000 rows each, joined to each other only through
    // product — the shape where FROM order decides between a 4M-row cross
    // product and a 20k-row chain.
    auto returns = catalog.CreateTable(
        "returns", Schema({{"item", DataType::kString},
                           {"qty", DataType::kInteger}}));
    auto restock = catalog.CreateTable(
        "restock", Schema({{"item", DataType::kString},
                           {"qty", DataType::kInteger}}));
    const int64_t num_items =
        static_cast<int64_t>(items.value().rows.size());
    int64_t id = 0;
    for (const Row& row : items.value().rows) {
      product.value()->AppendUnchecked({row[0], Value::Integer(id)});
      ++id;
    }
    for (int64_t i = 0; i < 10 * num_items; ++i) {
      const Row& row = items.value().rows[static_cast<size_t>(i % num_items)];
      returns.value()->AppendUnchecked({row[0], Value::Integer(i % 7)});
      restock.value()->AppendUnchecked({row[0], Value::Integer(i % 5)});
    }
  }
  (void)engine.Execute("ANALYZE");

  const PlanQuery queries[] = {
      // Build side: the 200-row dim is on the left, so the syntactic plan
      // builds the hash table over the ~90k-row purchase side; the
      // cost-based plan swaps the build to the dim.
      {"build_swap",
       "SELECT p.pid, s.price FROM product p, purchase s "
       "WHERE p.item = s.item AND s.price > 50.0",
       true},
      // Join order: returns and restock have no direct predicate, so the
      // syntactic left-deep plan crosses them (4M rows) before product can
      // restrict anything; the cost-based plan joins each through product
      // and never exceeds ~20k intermediate rows.
      {"join_reorder",
       "SELECT COUNT(*), SUM(r.qty + k.qty) FROM returns r, restock k, "
       "product p WHERE r.item = p.item AND k.item = p.item",
       true},
      // Guard rails: shapes the syntactic planner already handles well
      // must not regress.
      {"filter_scan", "SELECT tr FROM purchase WHERE price > 100.0", false},
      {"group_by",
       "SELECT item, COUNT(*), SUM(price) FROM purchase GROUP BY item",
       false},
      {"good_join",
       "SELECT s.tr, p.pid FROM purchase s, product p WHERE s.item = p.item",
       false},
  };

  JsonWriter w;
  w.BeginObject();
  bool ok = true;
  int improved = 0;
  w.Key("sql").BeginArray();
  for (const PlanQuery& q : queries) {
    double best_ms[2] = {1e300, 1e300};
    std::string dump[2];
    // Interleaved with alternating order, for the same reason as the
    // mining loop below: both modes should see the same allocator state.
    for (int rep = 0; rep < kReps; ++rep) {
      for (int pos = 0; pos < 2; ++pos) {
        const int cost = (pos + rep) % 2;
        engine.set_cost_based(cost == 1);
        auto start = std::chrono::steady_clock::now();
        auto result = engine.Execute(q.sql);
        auto stop = std::chrono::steady_clock::now();
        if (!result.ok()) {
          std::fprintf(stderr, "PLAN SMOKE FAIL %s (%s): %s\n", q.name,
                       cost ? "cost-based" : "syntactic",
                       result.status().ToString().c_str());
          return 1;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        if (ms < best_ms[cost]) best_ms[cost] = ms;
        if (rep == 0) dump[cost] = RenderResult(result.value());
      }
    }
    if (dump[0] != dump[1]) {
      std::fprintf(stderr,
                   "PLAN SMOKE FAIL %s: cost-based result differs from "
                   "syntactic\n",
                   q.name);
      return 1;
    }
    const double speedup = best_ms[0] / best_ms[1];
    const bool pass = best_ms[1] <= best_ms[0] * kSlowdownTolerance;
    if (!pass) ok = false;
    if (q.checked && speedup >= kRequiredSpeedup) ++improved;
    w.BeginObject();
    w.Key("query").String(q.name);
    w.Key("syntactic_ms").Double(best_ms[0]);
    w.Key("cost_based_ms").Double(best_ms[1]);
    w.Key("speedup").Double(speedup);
    w.Key("checked").Bool(q.checked);
    w.Key("pass").Bool(pass);
    w.EndObject();
  }
  w.EndArray();

  // Part 2: adaptive algorithm selection. The static default is the paper's
  // gid-list scheme; `checked` shapes are dense with a shallow frequent
  // lattice, where auto resolves to DHP (~10x measured).
  struct MineWorkload {
    const char* name;
    mining::TransactionDb db;
    double support;
    bool checked;
  };
  std::vector<MineWorkload> workloads;
  {
    Random rng(4242);
    std::vector<mining::Itemset> txns;
    for (int64_t i = 0; i < 8000; ++i) {
      mining::Itemset t;
      for (int k = 0; k < 12; ++k) {
        t.push_back(static_cast<mining::ItemId>(rng.NextBounded(40)));
      }
      std::sort(t.begin(), t.end());
      t.erase(std::unique(t.begin(), t.end()), t.end());
      txns.push_back(std::move(t));
    }
    workloads.push_back(
        {"dense_shallow",
         mining::TransactionDb::FromTransactions(std::move(txns), 8000), 0.15,
         true});
  }
  {
    datagen::QuestParams qp;
    qp.num_transactions = 10000;
    qp.avg_transaction_size = 10;
    qp.avg_pattern_size = 4;
    qp.num_items = 500;
    qp.num_patterns = 80;
    workloads.push_back({"sparse", datagen::GenerateQuestDb(qp), 0.01, false});
  }
  {
    datagen::QuestParams qp;
    qp.num_transactions = 2000;
    qp.avg_transaction_size = 12;
    qp.avg_pattern_size = 5;
    qp.num_items = 60;
    qp.num_patterns = 15;
    workloads.push_back(
        {"deep_lattice", datagen::GenerateQuestDb(qp), 0.04, false});
  }

  int mine_improved = 0;
  w.Key("mining").BeginArray();
  for (const MineWorkload& load : workloads) {
    const mining::SimpleAlgorithm algs[2] = {
        mining::SimpleAlgorithm::kGidList, mining::SimpleAlgorithm::kAuto};
    double best_ms[2] = {1e300, 1e300};
    size_t rule_count[2] = {0, 0};
    // Reps are interleaved and the run order alternates so allocator state
    // is shared fairly; the parity workloads compare an algorithm against
    // itself and would otherwise show pure measurement drift.
    for (int rep = 0; rep < 4; ++rep) {
      for (int pos = 0; pos < 2; ++pos) {
        const int a = (pos + rep) % 2;
        auto start = std::chrono::steady_clock::now();
        auto rules = mining::MineSimpleRules(load.db, load.support, 0.3,
                                             mining::CardinalityConstraint{},
                                             mining::CardinalityConstraint{},
                                             algs[a], {});
        auto stop = std::chrono::steady_clock::now();
        if (!rules.ok()) {
          std::fprintf(stderr, "PLAN SMOKE FAIL %s: %s\n", load.name,
                       rules.status().ToString().c_str());
          return 1;
        }
        rule_count[a] = rules.value().size();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        if (ms < best_ms[a]) best_ms[a] = ms;
      }
    }
    if (rule_count[0] != rule_count[1]) {
      std::fprintf(stderr, "PLAN SMOKE FAIL %s: auto found %zu rules, "
                   "static found %zu\n",
                   load.name, rule_count[1], rule_count[0]);
      return 1;
    }
    const mining::SimpleAlgorithm resolved = mining::ChooseSimpleAlgorithm(
        load.db,
        mining::MinGroupCount(load.support, load.db.total_groups()));
    const double speedup = best_ms[0] / best_ms[1];
    // When auto resolves to the static default the two runs execute the
    // same member and the timing delta is pure allocator/cache noise (up to
    // ~15% on the rule-heavy shapes); the timing gate only applies when the
    // selection actually diverged.
    const bool pass = resolved == mining::SimpleAlgorithm::kGidList ||
                      best_ms[1] <= best_ms[0] * kSlowdownTolerance;
    if (!pass) ok = false;
    if (load.checked && speedup >= kRequiredSpeedup) ++mine_improved;
    w.BeginObject();
    w.Key("workload").String(load.name);
    w.Key("auto_algorithm").String(mining::SimpleAlgorithmName(resolved));
    w.Key("static_ms").Double(best_ms[0]);
    w.Key("auto_ms").Double(best_ms[1]);
    w.Key("speedup").Double(speedup);
    w.Key("rules").Int(static_cast<int64_t>(rule_count[0]));
    w.Key("checked").Bool(load.checked);
    w.Key("pass").Bool(pass);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  const std::string json = w.str();
  auto valid = ValidateJson(json);
  if (!valid.ok()) {
    std::fprintf(stderr, "plan-smoke JSON invalid: %s\n",
                 valid.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", json.c_str());
  if (improved == 0) {
    std::printf("PLAN SMOKE FAIL: no checked query improved >= 1.15x\n");
    return 1;
  }
  if (mine_improved == 0) {
    std::printf(
        "PLAN SMOKE FAIL: adaptive selection did not improve >= 1.15x\n");
    return 1;
  }
  if (!ok) {
    std::printf("PLAN SMOKE FAIL: a shape regressed past 5%%\n");
    return 1;
  }
  std::printf("PLAN SMOKE OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return RunSmoke();
    if (std::strcmp(argv[i], "--plan-smoke") == 0) return RunPlanSmoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
