// Experiment Fig.1+Fig.2: the paper's running example.
//
// Prints the Figure 1 input table, the Figure 2.b output table (exact
// reproduction), and benchmarks the end-to-end MINE RULE execution on the
// 8-row example and on scaled-up versions of the same statement shape.

#include <benchmark/benchmark.h>

#include <iostream>

#include "datagen/paper_example.h"
#include "datagen/retail_gen.h"
#include "engine/data_mining_system.h"

namespace {

using namespace minerule;

void PrintFigures() {
  Catalog catalog;
  mr::DataMiningSystem system(&catalog);
  auto table = datagen::MakePaperPurchaseTable(&catalog);
  if (!table.ok()) {
    std::cerr << table.status() << "\n";
    return;
  }
  std::cout << "=== Figure 1: the Purchase table ===\n"
            << table.value()->ToDisplayString();
  auto stats = system.ExecuteMineRule(datagen::PaperExampleStatement());
  if (!stats.ok()) {
    std::cerr << stats.status() << "\n";
    return;
  }
  auto rendered = system.RenderRules("FilteredOrderedSets");
  std::cout << "\n=== Figure 2.b: FilteredOrderedSets ===\n"
            << rendered.value_or("(render failed)")
            << "\nPaper's Figure 2.b for comparison:\n"
               "  {brown_boots}          => {col_shirts}  S=0.5 C=1\n"
               "  {jackets}              => {col_shirts}  S=0.5 C=0.5\n"
               "  {brown_boots, jackets} => {col_shirts}  S=0.5 C=1\n\n";
}

void BM_PaperExample(benchmark::State& state) {
  Catalog catalog;
  mr::DataMiningSystem system(&catalog);
  if (!datagen::MakePaperPurchaseTable(&catalog).ok()) {
    state.SkipWithError("table setup failed");
    return;
  }
  const std::string statement = datagen::PaperExampleStatement();
  int64_t rules = 0;
  for (auto _ : state) {
    auto stats = system.ExecuteMineRule(statement);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    rules = stats.value().output.num_rules;
  }
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_PaperExample)->Unit(benchmark::kMillisecond);

/// The same statement shape on generated stores of growing size.
void BM_PaperStatementScaled(benchmark::State& state) {
  Catalog catalog;
  mr::DataMiningSystem system(&catalog);
  datagen::RetailParams params;
  params.num_customers = state.range(0);
  params.num_items = 40;
  if (!datagen::GenerateRetailTable(&catalog, "Purchase", params).ok()) {
    state.SkipWithError("retail generation failed");
    return;
  }
  const char* statement =
      "MINE RULE FilteredOrderedSets AS SELECT DISTINCT 1..n item AS BODY, "
      "1..n item AS HEAD, SUPPORT, CONFIDENCE WHERE BODY.price >= 100 AND "
      "HEAD.price < 100 FROM Purchase GROUP BY customer CLUSTER BY date "
      "HAVING BODY.date < HEAD.date EXTRACTING RULES WITH SUPPORT: 0.05, "
      "CONFIDENCE: 0.3";
  int64_t rules = 0;
  for (auto _ : state) {
    auto stats = system.ExecuteMineRule(statement);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    rules = stats.value().output.num_rules;
  }
  state.counters["rules"] = static_cast<double>(rules);
  state.counters["customers"] = static_cast<double>(params.num_customers);
}
BENCHMARK(BM_PaperStatementScaled)
    ->Arg(50)
    ->Arg(200)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintFigures();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
